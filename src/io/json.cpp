#include "io/json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pgsi {

const JsonValue* JsonValue::find(std::string_view key) const {
    const JsonValue* hit = nullptr;
    for (const auto& [k, v] : object)
        if (k == key) hit = &v;
    return hit;
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr)
        throw Error("json: missing member \"" + std::string(key) + "\"");
    return *v;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::str_or(std::string_view key,
                              std::string_view fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : s_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after document");
        return v;
    }

private:
    std::string_view s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    static constexpr int kMaxDepth = 256;

    [[noreturn]] void fail(const std::string& what) const {
        throw InvalidArgument("json: " + what + " at offset " +
                              std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (s_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        if (++depth_ > kMaxDepth) fail("nesting too deep");
        JsonValue v;
        switch (peek()) {
        case '{': v = parse_object(); break;
        case '[': v = parse_array(); break;
        case '"':
            v.kind = JsonValue::Kind::String;
            v.string = parse_string();
            break;
        case 't':
            if (!consume_literal("true")) fail("invalid literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            break;
        case 'f':
            if (!consume_literal("false")) fail("invalid literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            break;
        case 'n':
            if (!consume_literal("null")) fail("invalid literal");
            v.kind = JsonValue::Kind::Null;
            break;
        default: v = parse_number();
        }
        --depth_;
        return v;
    }

    JsonValue parse_object() {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            if (peek() != '"') fail("expected object key");
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == '}') return v;
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array() {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parse_value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == ']') return v;
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    unsigned parse_hex4() {
        if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = s_[pos_ + static_cast<std::size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
            else fail("invalid \\u escape");
        }
        pos_ += 4;
        return v;
    }

    void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("truncated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = parse_hex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                        s_[pos_ + 1] != 'u')
                        fail("unpaired surrogate");
                    pos_ += 2;
                    const unsigned lo = parse_hex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired surrogate");
                }
                append_utf8(out, cp);
                break;
            }
            default: fail("invalid escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        const auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) fail("invalid number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) fail("invalid number");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
            if (digits() == 0) fail("invalid number");
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        // strtod needs NUL termination; numbers are short, copy them.
        const std::string num(s_.substr(start, pos_ - start));
        v.number = std::strtod(num.c_str(), nullptr);
        return v;
    }
};

} // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

JsonValue parse_json_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) throw Error("cannot open json file: " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    return parse_json(buf.str());
}

} // namespace pgsi
