// Minimal JSON reader for pgsi's own artifacts (io subsystem).
//
// The observability stack writes JSON — Chrome traces, metrics snapshots,
// SolveReports, BENCH_scaling records — and the report renderer and the
// perf-regression gate need to read it back. This is a small recursive-
// descent parser for exactly that: well-formed RFC 8259 documents produced
// by this repository (and hand-written test fixtures). It keeps object key
// order, parses every number as double (the artifacts never exceed 2^53),
// and decodes \uXXXX escapes to UTF-8 (surrogate pairs included).
//
// It is not a streaming parser and holds the whole document in memory;
// reports and bench records are a few MB at most.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pgsi {

/// One parsed JSON value; a tagged tree.
class JsonValue {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    /// Members in document order (duplicate keys keep the last, but both
    /// entries remain visible here).
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_null() const { return kind == Kind::Null; }
    bool is_bool() const { return kind == Kind::Bool; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_string() const { return kind == Kind::String; }
    bool is_array() const { return kind == Kind::Array; }
    bool is_object() const { return kind == Kind::Object; }

    /// Member lookup (last occurrence wins); nullptr when absent or when
    /// this value is not an object.
    const JsonValue* find(std::string_view key) const;

    /// Member lookup that throws pgsi::Error when the key is absent.
    const JsonValue& at(std::string_view key) const;

    /// `find(key)->number` with a fallback when the member is absent or
    /// not a number.
    double num_or(std::string_view key, double fallback) const;

    /// `find(key)->string` with a fallback when absent or not a string.
    std::string str_or(std::string_view key, std::string_view fallback) const;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws pgsi::InvalidArgument with offset context on malformed input.
JsonValue parse_json(std::string_view text);

/// Read and parse a JSON file. Throws pgsi::Error on I/O failure.
JsonValue parse_json_file(const std::string& path);

} // namespace pgsi
