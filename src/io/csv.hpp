// CSV output for waveforms and sweep results, so benches and examples can
// dump the series behind every reproduced figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/matrix.hpp"

namespace pgsi {

/// Write columns of equal length with a header row. Throws on ragged data.
void write_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<VectorD>& columns);

/// Convenience: write to a file path.
void write_csv_file(const std::string& path,
                    const std::vector<std::string>& headers,
                    const std::vector<VectorD>& columns);

} // namespace pgsi
