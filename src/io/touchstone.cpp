#include "io/touchstone.hpp"

#include <cctype>
#include <cmath>
#include <complex>
#include <fstream>
#include <sstream>
#include <ostream>

#include "common/error.hpp"

namespace pgsi {

void write_touchstone(std::ostream& os, const VectorD& freqs_hz,
                      const std::vector<MatrixC>& s, double z0) {
    PGSI_REQUIRE(freqs_hz.size() == s.size(),
                 "write_touchstone: frequency/matrix count mismatch");
    PGSI_REQUIRE(!s.empty(), "write_touchstone: empty sweep");
    const std::size_t n = s.front().rows();
    for (const MatrixC& m : s)
        PGSI_REQUIRE(m.rows() == n && m.cols() == n,
                     "write_touchstone: inconsistent matrix sizes");

    os << "! pgsi S-parameter export, " << n << " ports\n";
    os << "# Hz S RI R " << z0 << "\n";
    os.precision(12);
    for (std::size_t i = 0; i < s.size(); ++i) {
        os << freqs_hz[i];
        // Touchstone orders row-major for n >= 3; 2-port uses column-major
        // (S11 S21 S12 S22).
        if (n == 2) {
            const MatrixC& m = s[i];
            os << " " << m(0, 0).real() << " " << m(0, 0).imag();
            os << " " << m(1, 0).real() << " " << m(1, 0).imag();
            os << " " << m(0, 1).real() << " " << m(0, 1).imag();
            os << " " << m(1, 1).real() << " " << m(1, 1).imag();
            os << "\n";
        } else {
            // The spec wraps n >= 3 records: each matrix row starts a new
            // line, with at most four complex pairs per line.
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t c = 0; c < n; ++c) {
                    if (c > 0 && c % 4 == 0) os << "\n";
                    os << " " << s[i](r, c).real() << " " << s[i](r, c).imag();
                }
                os << "\n";
            }
        }
    }
}

void write_touchstone_file(const std::string& path, const VectorD& freqs_hz,
                           const std::vector<MatrixC>& s, double z0) {
    std::ofstream f(path);
    PGSI_REQUIRE(f.good(), "write_touchstone_file: cannot open '" + path + "'");
    write_touchstone(f, freqs_hz, s, z0);
}

namespace {

enum class TsFormat { Ri, Ma, Db };

std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

Complex decode_pair(double a, double b, TsFormat fmt) {
    switch (fmt) {
        case TsFormat::Ri:
            return Complex(a, b);
        case TsFormat::Ma:
            return std::polar(a, b * 3.14159265358979323846 / 180.0);
        case TsFormat::Db:
            return std::polar(std::pow(10.0, a / 20.0),
                              b * 3.14159265358979323846 / 180.0);
    }
    return {};
}

} // namespace

TouchstoneData read_touchstone(const std::string& text, std::size_t ports) {
    TouchstoneData out;
    double funit = 1e9; // Touchstone default is GHz
    TsFormat fmt = TsFormat::Ma;

    std::istringstream is(text);
    std::string line;
    std::vector<double> numbers; // pending values of the current record
    std::size_t record_len = 0;  // 1 + 2*n^2 once the port count is known

    auto flush_record = [&]() {
        const std::size_t n = ports;
        MatrixC s(n, n);
        std::size_t k = 1;
        if (n == 2) {
            // 2-port files are column-major: S11 S21 S12 S22.
            s(0, 0) = decode_pair(numbers[k], numbers[k + 1], fmt);
            s(1, 0) = decode_pair(numbers[k + 2], numbers[k + 3], fmt);
            s(0, 1) = decode_pair(numbers[k + 4], numbers[k + 5], fmt);
            s(1, 1) = decode_pair(numbers[k + 6], numbers[k + 7], fmt);
        } else {
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t c = 0; c < n; ++c, k += 2)
                    s(r, c) = decode_pair(numbers[k], numbers[k + 1], fmt);
        }
        out.freqs_hz.push_back(numbers[0] * funit);
        out.s.push_back(std::move(s));
        numbers.clear();
    };

    while (std::getline(is, line)) {
        // Strip '!' comments.
        const std::size_t bang = line.find('!');
        if (bang != std::string::npos) line.resize(bang);
        std::istringstream ls(line);
        std::string first;
        if (!(ls >> first)) continue;

        if (first == "#") {
            std::string tok;
            while (ls >> tok) {
                const std::string t = lower(tok);
                if (t == "hz") funit = 1.0;
                else if (t == "khz") funit = 1e3;
                else if (t == "mhz") funit = 1e6;
                else if (t == "ghz") funit = 1e9;
                else if (t == "ri") fmt = TsFormat::Ri;
                else if (t == "ma") fmt = TsFormat::Ma;
                else if (t == "db") fmt = TsFormat::Db;
                else if (t == "s") { /* parameter type */ }
                else if (t == "r") {
                    PGSI_REQUIRE(static_cast<bool>(ls >> tok),
                                 "read_touchstone: option line missing the "
                                 "reference resistance after R: '" + line + "'");
                    try {
                        std::size_t used = 0;
                        out.z0 = std::stod(tok, &used);
                        if (used != tok.size())
                            throw InvalidArgument("trailing characters");
                    } catch (const std::exception&) {
                        throw InvalidArgument(
                            "read_touchstone: bad reference resistance '" +
                            tok + "' in option line '" + line + "'");
                    }
                } else {
                    throw InvalidArgument("read_touchstone: bad option '" +
                                          tok + "'");
                }
            }
            continue;
        }

        // Data line: `first` plus the remaining numbers.
        std::vector<double> vals;
        try {
            vals.push_back(std::stod(first));
            std::string tok;
            while (ls >> tok) vals.push_back(std::stod(tok));
        } catch (const std::exception&) {
            throw InvalidArgument("read_touchstone: bad data line '" + line +
                                  "'");
        }

        if (record_len == 0) {
            if (ports == 0) {
                // Infer from the first (complete) record.
                const std::size_t pairs = vals.size() - 1;
                const auto n = static_cast<std::size_t>(
                    std::lround(std::sqrt(pairs / 2.0)));
                PGSI_REQUIRE(n >= 1 && 2 * n * n == pairs,
                             "read_touchstone: cannot infer port count; pass "
                             "it explicitly");
                ports = n;
            }
            record_len = 1 + 2 * ports * ports;
        }
        numbers.insert(numbers.end(), vals.begin(), vals.end());
        while (numbers.size() >= record_len) {
            std::vector<double> rest(numbers.begin() + record_len, numbers.end());
            numbers.resize(record_len);
            flush_record();
            numbers = std::move(rest);
        }
    }
    PGSI_REQUIRE(numbers.empty(), "read_touchstone: truncated final record");
    PGSI_REQUIRE(!out.s.empty(), "read_touchstone: no data records");
    return out;
}

TouchstoneData load_touchstone_file(const std::string& path) {
    std::ifstream f(path);
    PGSI_REQUIRE(f.good(), "load_touchstone_file: cannot open '" + path + "'");
    std::ostringstream os;
    os << f.rdbuf();
    // Infer the port count from a ".sNp" extension when present.
    std::size_t ports = 0;
    const std::size_t dot = path.rfind('.');
    if (dot != std::string::npos) {
        const std::string ext = lower(path.substr(dot + 1));
        if (ext.size() >= 3 && ext.front() == 's' && ext.back() == 'p') {
            try {
                ports = std::stoul(ext.substr(1, ext.size() - 2));
            } catch (const std::exception&) {
                ports = 0;
            }
        }
    }
    return read_touchstone(os.str(), ports);
}

} // namespace pgsi
