// Touchstone (.sNp) writer for S-parameter sweeps — the interchange format
// used for the frequency-domain verification data of §6.1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/matrix.hpp"

namespace pgsi {

/// Write an S-parameter sweep in Touchstone format (Hz, real/imaginary,
/// reference z0). s[i] must be an n×n matrix matching freqs_hz[i].
void write_touchstone(std::ostream& os, const VectorD& freqs_hz,
                      const std::vector<MatrixC>& s, double z0 = 50.0);

/// Convenience: write to a file path.
void write_touchstone_file(const std::string& path, const VectorD& freqs_hz,
                           const std::vector<MatrixC>& s, double z0 = 50.0);

/// Parsed Touchstone sweep.
struct TouchstoneData {
    VectorD freqs_hz;
    std::vector<MatrixC> s;
    double z0 = 50.0;
};

/// Parse Touchstone text. Handles Hz/kHz/MHz/GHz frequency units, RI/MA/DB
/// data formats and wrapped data lines. `ports` fixes the port count; pass 0
/// to infer it from the first data record (requires the record on one line).
TouchstoneData read_touchstone(const std::string& text, std::size_t ports = 0);

/// Load from a file path; the port count is inferred from the .sNp extension
/// when possible, else from the data.
TouchstoneData load_touchstone_file(const std::string& path);

} // namespace pgsi
