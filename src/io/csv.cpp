#include "io/csv.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace pgsi {

void write_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<VectorD>& columns) {
    PGSI_REQUIRE(headers.size() == columns.size(),
                 "write_csv: header/column count mismatch");
    PGSI_REQUIRE(!columns.empty(), "write_csv: no columns");
    const std::size_t rows = columns.front().size();
    for (const VectorD& c : columns)
        PGSI_REQUIRE(c.size() == rows, "write_csv: ragged columns");

    os.precision(9);
    for (std::size_t h = 0; h < headers.size(); ++h)
        os << headers[h] << (h + 1 < headers.size() ? "," : "\n");
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < columns.size(); ++c)
            os << columns[c][r] << (c + 1 < columns.size() ? "," : "\n");
}

void write_csv_file(const std::string& path,
                    const std::vector<std::string>& headers,
                    const std::vector<VectorD>& columns) {
    std::ofstream f(path);
    PGSI_REQUIRE(f.good(), "write_csv_file: cannot open '" + path + "'");
    write_csv(f, headers, columns);
}

} // namespace pgsi
