// Board-level system description (§5.2, Fig. 3): the power/ground plane
// pair, the chips (driver sites with package parasitics), decoupling
// capacitors, and the voltage-regulator connection. This is the input to the
// integrated SSN co-simulation of si/cosim.hpp.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "circuit/driver.hpp"
#include "geometry/polygon.hpp"
#include "si/package.hpp"

namespace pgsi {

/// Power/ground plane-pair stackup.
struct BoardStackup {
    double plane_separation = 0; ///< dielectric thickness between planes [m]
    double eps_r = 4.5;          ///< dielectric constant (FR4 default)
    double sheet_resistance = 0.6e-3; ///< per plane [ohm/sq] (1 oz copper)
};

/// A surface-mount decoupling capacitor between the planes.
struct Decap {
    Point2 pos;          ///< board location
    double c = 100e-9;   ///< capacitance [F]
    double esr = 30e-3;  ///< equivalent series resistance [ohm]
    double esl = 1e-9;   ///< equivalent series inductance (incl. mounting) [H]
};

/// One output driver with its package pins and load.
struct DriverSite {
    std::string name;
    Point2 vcc_pin;      ///< power-pin location on the power plane
    Point2 gnd_pin;      ///< ground-pin location on the ground plane
    DriverParams driver; ///< behavioral output stage
    PackagePin vcc_pkg = packages::pqfp;
    PackagePin gnd_pkg = packages::pqfp;
    double load_c = 15e-12; ///< lumped load at the driver output [F]
};

/// A point-to-point signal net: a transmission line from one driver's output
/// to a receiver (§5.2's fourth subsystem). The line references the ground
/// plane; keep the simulation time step below the line delay.
struct SignalNet {
    std::size_t driver_site = 0; ///< index into the driver-site list
    double z0 = 50.0;            ///< characteristic impedance [ohm]
    double delay = 1e-9;         ///< one-way delay [s]
    double receiver_c = 5e-12;   ///< receiver input capacitance [F]
    double term_r = 0;           ///< far-end parallel termination [ohm]; 0 = none
};

/// A digital board with one power/ground plane pair.
class Board {
public:
    /// Rectangular planes width × height [m].
    Board(double width, double height, BoardStackup stackup, double vdd = 5.0);

    double width() const { return width_; }
    double height() const { return height_; }
    const BoardStackup& stackup() const { return stackup_; }
    double vdd() const { return vdd_; }

    /// Cutouts in the power plane (slots, clearouts).
    void add_power_plane_cutout(const Polygon& hole) { cutouts_.push_back(hole); }
    const std::vector<Polygon>& power_plane_cutouts() const { return cutouts_; }

    /// Where the regulator ties in (defaults to the lower-left corner).
    void set_vrm_location(Point2 p) { vrm_ = p; }
    Point2 vrm_location() const { return vrm_; }

    void add_decap(const Decap& d) { decaps_.push_back(d); }
    const std::vector<Decap>& decaps() const { return decaps_; }
    std::vector<Decap>& decaps() { return decaps_; }

    void add_driver_site(const DriverSite& s) { sites_.push_back(s); }
    const std::vector<DriverSite>& driver_sites() const { return sites_; }
    std::vector<DriverSite>& driver_sites() { return sites_; }

    void add_signal_net(const SignalNet& n) { signal_nets_.push_back(n); }
    const std::vector<SignalNet>& signal_nets() const { return signal_nets_; }

    /// Ground stitching points: low-inductance ties from the ground plane to
    /// the system reference (chassis / connector returns). These account for
    /// ground pins beyond the ones paired with driver sites.
    void add_gnd_stitch(Point2 p) { gnd_stitches_.push_back(p); }
    const std::vector<Point2>& gnd_stitches() const { return gnd_stitches_; }

private:
    double width_, height_;
    BoardStackup stackup_;
    double vdd_;
    Point2 vrm_{0.01, 0.01};
    std::vector<Polygon> cutouts_;
    std::vector<Decap> decaps_;
    std::vector<DriverSite> sites_;
    std::vector<SignalNet> signal_nets_;
    std::vector<Point2> gnd_stitches_;
};

/// The pre-layout evaluation board of §6.2 example 1: 7×10 inch, power and
/// ground planes 30 mil apart (FR4), one chip with sixteen CMOS drivers.
/// `switching` of the sixteen drivers get the given pulse input; the rest
/// stay quiet.
Board make_ssn_eval_board(int switching, double trise = 1e-9,
                          double vdd = 5.0);

/// The post-layout board of §6.2 example 2, synthesized with the paper's
/// quoted parameters: four-layer board, plane pair 10 mil apart, twenty-six
/// chips, 55 Vcc and 80 Gnd pins. Geometry/assignment is drawn from a seeded
/// RNG so the experiment is reproducible.
Board make_postlayout_board(unsigned seed = 1998);

} // namespace pgsi
