// Integrated system-level SSN simulation (§5.2, Fig. 3).
//
// The board is partitioned into the paper's four subsystems — chip devices
// (behavioral drivers), chip packages (pin parasitics), signal nets
// (transmission lines, when present), and the power/ground planes (extracted
// equivalent circuit) — and simulated together in the time domain.
//
// Plane modeling follows the paper's Fig. 2 configuration: the power plane
// (with any cutouts / splits) is meshed and extracted against the ground
// plane acting as the common reference, handled through image theory in the
// layered Green's functions. Every power pin becomes a circuit node of the
// distributed RLC network; ground pins reach the reference through their
// package parasitics. (An element-wise branch circuit spanning two meshed
// planes would contain negative mutual-inductance branches whose internal
// loop modes are unstable in time-domain integration — the common-reference
// form is both the paper's and the numerically sound realization.)
//
// Two couplings are provided:
//
//  * SsnModel — all subsystems stamped into one MNA system and solved
//    simultaneously (unconditionally consistent; the primary engine).
//  * PartitionedCosim — the coupling scheme as the paper describes it: "at
//    every time step the driver Vcc and Gnd currents are imposed upon the
//    power/ground net as source to calculate the ground noise responses, and
//    these noises are fed back to the device ... simulation". Device and
//    plane subsystems run as separate MNA steppers exchanging pin currents
//    and supply voltages once per step (Gauss–Seidel relaxation).
//
// The ablation bench A4 quantifies the difference between the two.
#pragma once

#include <memory>

#include "circuit/transient.hpp"
#include "em/bem_plane.hpp"
#include "extract/equivalent_circuit.hpp"
#include "si/board.hpp"

namespace pgsi {

/// Controls for plane meshing / extraction and regulator parasitics.
struct SsnModelOptions {
    double mesh_pitch = 12e-3;     ///< plane mesh pitch [m]
    std::size_t interior_nodes = 16; ///< interior circuit nodes kept per model
    Testing testing = Testing::PointMatching;
    double prune_rel_tol = 0.02;   ///< equivalent-circuit branch pruning
    double vrm_r = 5e-3;           ///< regulator series resistance [ohm]
    double vrm_l = 2e-9;           ///< regulator connection inductance [H]
};

/// Field model of one board's power plane: mesh, BEM extraction, equivalent
/// circuit, and the mapping from board features to circuit nodes. Built once
/// and shared between simulation variants (the extraction is the expensive
/// step; driver/decap changes do not invalidate it as long as positions are
/// declared up front).
class PlaneModel {
public:
    PlaneModel(const Board& board, const SsnModelOptions& options);

    const Board& board() const { return board_; }
    const SsnModelOptions& options() const { return options_; }
    const PlaneBem& bem() const { return *bem_; }
    const EquivalentCircuit& circuit() const { return circuit_; }

    /// Circuit-node index (into circuit().node_*) of each board feature on
    /// the power plane.
    std::size_t site_vcc_node(std::size_t site) const;
    std::size_t decap_vcc_node(std::size_t decap) const;
    std::size_t vrm_vcc_node() const { return vrm_vcc_; }

private:
    Board board_;
    SsnModelOptions options_;
    std::unique_ptr<PlaneBem> bem_;
    EquivalentCircuit circuit_;
    std::vector<std::size_t> site_vcc_, decap_vcc_;
    std::size_t vrm_vcc_ = 0;
};

/// Monolithic SSN netlist: plane circuit + regulator + decaps + packages +
/// drivers in one MNA system.
class SsnModel {
public:
    /// active_decaps limits how many of the board's decaps are populated
    /// (npos = all) — the §6.2 decoupling study sweeps this.
    SsnModel(std::shared_ptr<const PlaneModel> plane,
             std::size_t active_decaps = static_cast<std::size_t>(-1));

    /// Populate an explicit subset of the board's decaps (indices into
    /// Board::decaps()) — used by the placement optimizer.
    SsnModel(std::shared_ptr<const PlaneModel> plane,
             const std::vector<std::size_t>& decap_subset);

    Netlist& netlist() { return nl_; }
    const Netlist& netlist() const { return nl_; }

    NodeId die_vcc(std::size_t site) const { return die_vcc_[site]; }
    NodeId die_gnd(std::size_t site) const { return die_gnd_[site]; }
    NodeId out(std::size_t site) const { return out_[site]; }
    NodeId board_vcc(std::size_t site) const { return board_vcc_[site]; }
    NodeId vrm_vcc() const { return vrm_vcc_node_; }
    /// Receiver node of signal net k (Board::signal_nets() order).
    NodeId receiver(std::size_t net) const { return rx_.at(net); }

    /// Run the transient; probes default to every die/board supply node and
    /// every driver output. `recovery` selects the numerical-recovery policy
    /// of the underlying transient/DC engines; recoveries performed are
    /// reported in TransientResult::recovery.
    TransientResult simulate(double dt, double tstop,
                             std::vector<NodeId> probes = {},
                             const robust::RecoveryOptions& recovery = {}) const;

    /// Worst ground bounce across sites: max |V(die_gnd) − V(board ref)|.
    static double peak_ground_bounce(const TransientResult& r,
                                     const std::vector<NodeId>& die_gnd_nodes);

private:
    std::shared_ptr<const PlaneModel> plane_;
    Netlist nl_;
    std::vector<NodeId> plane_node_map_; // circuit node -> netlist node
    std::vector<NodeId> die_vcc_, die_gnd_, out_, board_vcc_, rx_;
    NodeId vrm_vcc_node_ = 0;
};

/// Partitioned per-step Gauss–Seidel co-simulation (§5.2 description).
class PartitionedCosim {
public:
    PartitionedCosim(std::shared_ptr<const PlaneModel> plane, double dt,
                     std::size_t active_decaps = static_cast<std::size_t>(-1),
                     const robust::RecoveryOptions& recovery = {});
    ~PartitionedCosim();

    /// Telemetry of the per-step Gauss–Seidel exchange.
    struct CosimStats {
        std::size_t steps = 0;             ///< co-simulation time steps
        std::size_t current_exchanges = 0; ///< pin currents imposed on the plane
        std::size_t voltage_exchanges = 0; ///< supply voltages fed back to devices
        TransientStats device;             ///< device-partition stepper stats
        TransientStats plane;              ///< plane-partition stepper stats
    };

    struct Result {
        VectorD time;
        std::vector<VectorD> die_gnd;   ///< per site: die ground bounce [V]
        std::vector<VectorD> die_vcc;   ///< per site: die supply [V]
        std::vector<VectorD> plane_vcc; ///< per site: plane voltage at the Vcc pin
        CosimStats stats;               ///< partition-exchange telemetry
        /// Recoveries performed by either partition's stepper over the run.
        robust::RecoveryReport recovery;
    };
    Result run(double tstop);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace pgsi
