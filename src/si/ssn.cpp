#include "si/ssn.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

SwitchingSweepRow measure_noise(const SsnModel& model, double dt, double tstop) {
    const std::size_t nsites = model.netlist().drivers().size();
    std::vector<NodeId> probes;
    for (std::size_t s = 0; s < nsites; ++s) {
        probes.push_back(model.die_gnd(s));
        probes.push_back(model.die_vcc(s));
        probes.push_back(model.board_vcc(s));
    }
    const TransientResult r = model.simulate(dt, tstop, probes);

    SwitchingSweepRow row;
    for (std::size_t s = 0; s < nsites; ++s) {
        row.peak_gnd_bounce =
            std::max(row.peak_gnd_bounce, r.peak_excursion(model.die_gnd(s)));
        row.peak_vcc_droop =
            std::max(row.peak_vcc_droop, r.peak_excursion(model.die_vcc(s)));
        row.peak_plane_noise =
            std::max(row.peak_plane_noise, r.peak_excursion(model.board_vcc(s)));
    }
    return row;
}

std::vector<SwitchingSweepRow> sweep_switching_drivers(
    const std::vector<int>& switching_counts, const SsnModelOptions& options,
    double dt, double tstop) {
    PGSI_REQUIRE(!switching_counts.empty(), "sweep_switching_drivers: empty sweep");
    // Build the field model once from the all-switching variant; only driver
    // inputs change between rows, which does not affect the extraction.
    auto plane = std::make_shared<PlaneModel>(make_ssn_eval_board(16), options);

    std::vector<SwitchingSweepRow> rows;
    for (int n : switching_counts) {
        PGSI_REQUIRE(n >= 0 && n <= 16, "sweep_switching_drivers: 0..16 drivers");
        SsnModel model(plane);
        const Board ref = make_ssn_eval_board(n);
        for (std::size_t s = 0; s < model.netlist().drivers().size(); ++s)
            model.netlist().drivers()[s].params.input =
                ref.driver_sites()[s].driver.input;
        SwitchingSweepRow row = measure_noise(model, dt, tstop);
        row.n_switching = n;
        rows.push_back(row);
    }
    return rows;
}

SwitchingPatternResult find_worst_switching_pattern(
    std::shared_ptr<const PlaneModel> plane, std::size_t max_switching,
    const Source& switching_input, double dt, double tstop) {
    PGSI_REQUIRE(plane != nullptr, "find_worst_switching_pattern: null plane");
    const std::size_t nsites = plane->board().driver_sites().size();
    PGSI_REQUIRE(max_switching >= 1 && max_switching <= nsites,
                 "find_worst_switching_pattern: bad budget");

    SwitchingPatternResult res;
    std::vector<bool> chosen(nsites, false);

    auto noise_for = [&](const std::vector<bool>& active) {
        SsnModel model(plane);
        for (std::size_t s = 0; s < nsites; ++s)
            model.netlist().drivers()[s].params.input =
                active[s] ? switching_input : Source::dc(0.0);
        // The shared plane noise is the combination-sensitive metric;
        // per-die ground bounce saturates with the first aggressor.
        return measure_noise(model, dt, tstop).peak_plane_noise;
    };

    for (std::size_t pick = 0; pick < max_switching; ++pick) {
        double best_noise = -1;
        std::size_t best = nsites;
        for (std::size_t c = 0; c < nsites; ++c) {
            if (chosen[c]) continue;
            std::vector<bool> trial = chosen;
            trial[c] = true;
            const double n = noise_for(trial);
            if (n > best_noise) {
                best_noise = n;
                best = c;
            }
        }
        PGSI_ASSERT(best < nsites);
        chosen[best] = true;
        res.pattern.push_back(best);
        res.noise_after.push_back(best_noise);
    }
    return res;
}

std::vector<DecapSweepRow> sweep_decap_count(std::size_t max_decaps,
                                             const Decap& prototype,
                                             const SsnModelOptions& options,
                                             double dt, double tstop) {
    Board board = make_ssn_eval_board(16);
    // Candidate decaps ring the chip at increasing distance.
    const Point2 chip{3.5 * units::inch, 5.0 * units::inch};
    for (std::size_t d = 0; d < max_decaps; ++d) {
        Decap dc = prototype;
        const double ang = 2.0 * pi * static_cast<double>(d) /
                           std::max<std::size_t>(1, max_decaps);
        const double radius = 15e-3 + 6e-3 * static_cast<double>(d / 8);
        dc.pos = {chip.x + radius * std::cos(ang), chip.y + radius * std::sin(ang)};
        board.add_decap(dc);
    }

    auto plane = std::make_shared<PlaneModel>(board, options);
    std::vector<DecapSweepRow> rows;
    for (std::size_t n = 0; n <= max_decaps; n = (n == 0 ? 1 : n * 2)) {
        SsnModel model(plane, n);
        const SwitchingSweepRow noise = measure_noise(model, dt, tstop);
        DecapSweepRow row;
        row.n_decaps = std::min(n, max_decaps);
        row.total_capacitance = prototype.c * static_cast<double>(row.n_decaps);
        row.peak_gnd_bounce = noise.peak_gnd_bounce;
        row.peak_vcc_droop = noise.peak_vcc_droop;
        row.peak_plane_noise = noise.peak_plane_noise;
        rows.push_back(row);
        if (n == max_decaps) break;
        if (n * 2 > max_decaps && n != 0) {
            SsnModel full(plane, max_decaps);
            const SwitchingSweepRow fn = measure_noise(full, dt, tstop);
            DecapSweepRow last;
            last.n_decaps = max_decaps;
            last.total_capacitance = prototype.c * static_cast<double>(max_decaps);
            last.peak_gnd_bounce = fn.peak_gnd_bounce;
            last.peak_vcc_droop = fn.peak_vcc_droop;
            last.peak_plane_noise = fn.peak_plane_noise;
            rows.push_back(last);
            break;
        }
    }
    return rows;
}

} // namespace pgsi
