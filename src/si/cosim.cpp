#include "si/cosim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

// Build a single-conductor modal line from (z0, delay): any length works as
// long as L·len = z0·τ and C·len = τ/z0; unit length is used.
std::shared_ptr<const ModalTline> line_from_figures(double z0, double delay) {
    MtlParameters p;
    p.l = MatrixD{{z0 * delay}};
    p.c = MatrixD{{delay / z0}};
    return std::make_shared<ModalTline>(p, 1.0);
}

// Attach a board signal net to a driver output inside `nl`. Returns the
// receiver node.
NodeId stamp_signal_net(Netlist& nl, const SignalNet& net, NodeId out,
                        const std::string& name) {
    const NodeId rx = nl.add_node(name + "_rx");
    nl.add_tline("T" + name, {out}, {rx}, line_from_figures(net.z0, net.delay));
    if (net.receiver_c > 0)
        nl.add_capacitor("Crx_" + name, rx, nl.ground(), net.receiver_c);
    if (net.term_r > 0)
        nl.add_resistor("Rterm_" + name, rx, nl.ground(), net.term_r);
    return rx;
}

} // namespace

namespace {

// Locate a value in a sorted keep-list; the extraction guarantees presence.
std::size_t index_in(const std::vector<std::size_t>& keep, std::size_t node) {
    const auto it = std::lower_bound(keep.begin(), keep.end(), node);
    PGSI_ASSERT(it != keep.end() && *it == node);
    return static_cast<std::size_t>(it - keep.begin());
}

} // namespace

PlaneModel::PlaneModel(const Board& board, const SsnModelOptions& options)
    : board_(board), options_(options) {
    PGSI_TRACE_SCOPE("ssn.plane_model");
    PGSI_ALLOC_SCOPE("extract");
    // Paper Fig. 2 configuration: the power plane is meshed at the stackup
    // separation above the ground plane, which acts as the common reference
    // and enters through the image terms of the Green's functions.
    ConductorShape vcc;
    vcc.outline = Polygon::rectangle(0, 0, board_.width(), board_.height());
    vcc.holes = board_.power_plane_cutouts();
    vcc.z = board_.stackup().plane_separation;
    vcc.sheet_resistance = board_.stackup().sheet_resistance;
    vcc.name = "vcc";

    RectMesh mesh({vcc}, options_.mesh_pitch);
    bem_ = std::make_unique<PlaneBem>(
        std::move(mesh), Greens::homogeneous(board_.stackup().eps_r, true),
        BemOptions{options_.testing, 2, 4});

    const RectMesh& m = bem_->mesh();
    std::vector<std::size_t> ports;
    auto add_port = [&](Point2 p) {
        const std::size_t n = m.nearest_node(p, 0);
        ports.push_back(n);
        return n;
    };
    for (const DriverSite& s : board_.driver_sites())
        site_vcc_.push_back(add_port(s.vcc_pin));
    for (const Decap& d : board_.decaps()) decap_vcc_.push_back(add_port(d.pos));
    vrm_vcc_ = add_port(board_.vrm_location());

    CircuitExtractor extractor(*bem_, ExtractionOptions{options_.prune_rel_tol, true});
    const std::vector<std::size_t> keep =
        extractor.select_nodes(ports, options_.interior_nodes);
    {
        PGSI_TRACE_SCOPE("ssn.extract_circuit");
        circuit_ = extractor.extract(keep);
    }

    // Re-express the port mesh nodes as circuit-node indices.
    for (std::size_t& n : site_vcc_) n = index_in(keep, n);
    for (std::size_t& n : decap_vcc_) n = index_in(keep, n);
    vrm_vcc_ = index_in(keep, vrm_vcc_);
}

std::size_t PlaneModel::site_vcc_node(std::size_t site) const {
    PGSI_REQUIRE(site < site_vcc_.size(), "PlaneModel: site index out of range");
    return site_vcc_[site];
}
std::size_t PlaneModel::decap_vcc_node(std::size_t decap) const {
    PGSI_REQUIRE(decap < decap_vcc_.size(), "PlaneModel: decap index out of range");
    return decap_vcc_[decap];
}

namespace {

// Build the plane-side netlist (equivalent circuit + VRM + the selected
// decaps). The ground plane is the netlist reference. Returns the
// circuit-node -> netlist-node map.
std::vector<NodeId> stamp_plane_side(Netlist& nl, const PlaneModel& plane,
                                     const std::vector<std::size_t>& decaps) {
    const EquivalentCircuit& ec = plane.circuit();
    const Board& board = plane.board();
    const SsnModelOptions& opt = plane.options();

    std::vector<NodeId> node_map(ec.node_count());
    for (std::size_t k = 0; k < ec.node_count(); ++k)
        node_map[k] = nl.add_node("pl_" + std::to_string(k));
    ec.stamp(nl, node_map, nl.ground(), "pg");

    // Regulator: ideal Vdd behind R + L into the plane's VRM connection.
    const NodeId vsrc = nl.add_node("vrm_src");
    nl.add_vsource("Vvrm", vsrc, nl.ground(), Source::dc(board.vdd()));
    nl.add_inductor("Lvrm", vsrc, node_map[plane.vrm_vcc_node()], opt.vrm_l,
                    opt.vrm_r);

    for (std::size_t d : decaps) {
        PGSI_REQUIRE(d < board.decaps().size(),
                     "stamp_plane_side: decap index out of range");
        const Decap& dc = board.decaps()[d];
        const std::string tag = "dcap" + std::to_string(d);
        const NodeId mid = nl.add_node(tag + "_mid");
        nl.add_capacitor("C" + tag, node_map[plane.decap_vcc_node(d)], mid, dc.c);
        nl.add_inductor("L" + tag, mid, nl.ground(), dc.esl, dc.esr);
    }
    return node_map;
}

std::vector<std::size_t> prefix_decaps(const PlaneModel& plane,
                                       std::size_t count) {
    const std::size_t n =
        std::min<std::size_t>(count, plane.board().decaps().size());
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
}

} // namespace

SsnModel::SsnModel(std::shared_ptr<const PlaneModel> plane,
                   std::size_t active_decaps)
    : SsnModel(plane, prefix_decaps(*plane, active_decaps)) {}

SsnModel::SsnModel(std::shared_ptr<const PlaneModel> plane,
                   const std::vector<std::size_t>& decap_subset)
    : plane_(std::move(plane)) {
    PGSI_REQUIRE(plane_ != nullptr, "SsnModel: null plane model");
    plane_node_map_ = stamp_plane_side(nl_, *plane_, decap_subset);
    vrm_vcc_node_ = plane_node_map_[plane_->vrm_vcc_node()];

    const Board& board = plane_->board();
    for (std::size_t s = 0; s < board.driver_sites().size(); ++s) {
        const DriverSite& site = board.driver_sites()[s];
        const NodeId bvcc = plane_node_map_[plane_->site_vcc_node(s)];
        board_vcc_.push_back(bvcc);
        // Ground pin first so the Vcc pad capacitance can reference die Gnd;
        // the board side of the ground pin is the reference plane itself.
        const NodeId dgnd = stamp_package_pin(nl_, site.name + "_gnd",
                                              nl_.ground(), nl_.ground(),
                                              site.gnd_pkg);
        const NodeId dvcc =
            stamp_package_pin(nl_, site.name + "_vcc", bvcc, dgnd, site.vcc_pkg);
        const NodeId o = nl_.add_node(site.name + "_out");
        nl_.add_driver(site.name, o, dvcc, dgnd, site.driver);
        if (site.load_c > 0)
            nl_.add_capacitor("Cload_" + site.name, o, dgnd, site.load_c);
        die_vcc_.push_back(dvcc);
        die_gnd_.push_back(dgnd);
        out_.push_back(o);
    }
    for (std::size_t n = 0; n < board.signal_nets().size(); ++n) {
        const SignalNet& net = board.signal_nets()[n];
        PGSI_REQUIRE(net.driver_site < out_.size(),
                     "SsnModel: signal net references unknown driver site");
        rx_.push_back(stamp_signal_net(nl_, net, out_[net.driver_site],
                                       "net" + std::to_string(n)));
    }
}

TransientResult SsnModel::simulate(double dt, double tstop,
                                   std::vector<NodeId> probes,
                                   const robust::RecoveryOptions& recovery) const {
    PGSI_TRACE_SCOPE("ssn.simulate");
    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = tstop;
    opt.recovery = recovery;
    if (probes.empty()) {
        probes.push_back(nl_.ground());
        for (NodeId n : die_gnd_) probes.push_back(n);
        for (NodeId n : die_vcc_) probes.push_back(n);
        for (NodeId n : board_vcc_) probes.push_back(n);
        for (NodeId n : out_) probes.push_back(n);
        probes.push_back(vrm_vcc_node_);
    }
    opt.probes = std::move(probes);
    try {
        return transient_analyze(nl_, opt);
    } catch (NumericalError& e) {
        e.with_context("while simulating the SSN model (dt = " +
                       std::to_string(dt) + " s, tstop = " +
                       std::to_string(tstop) + " s)");
        throw;
    }
}

double SsnModel::peak_ground_bounce(const TransientResult& r,
                                    const std::vector<NodeId>& die_gnd_nodes) {
    double peak = 0;
    for (NodeId n : die_gnd_nodes) peak = std::max(peak, r.peak_excursion(n));
    return peak;
}

struct PartitionedCosim::Impl {
    std::shared_ptr<const PlaneModel> plane;
    double dt;

    Netlist plane_nl;
    Netlist dev_nl;
    std::vector<NodeId> node_map;
    // Per site: indices of the coupling sources.
    std::vector<std::size_t> i_vcc_idx; // isources in plane_nl
    std::vector<std::size_t> v_vcc_idx; // vsources in dev_nl
    std::vector<NodeId> plane_vcc_node;
    std::vector<NodeId> dev_die_vcc, dev_die_gnd, dev_out;

    std::unique_ptr<TransientStepper> plane_step, dev_step;

    Impl(std::shared_ptr<const PlaneModel> p, double dt_in, std::size_t ndecap,
         const robust::RecoveryOptions& recovery)
        : plane(std::move(p)), dt(dt_in) {
        node_map = stamp_plane_side(plane_nl, *plane, prefix_decaps(*plane, ndecap));
        const Board& board = plane->board();

        for (std::size_t s = 0; s < board.driver_sites().size(); ++s) {
            const DriverSite& site = board.driver_sites()[s];
            const NodeId pvcc = node_map[plane->site_vcc_node(s)];
            plane_vcc_node.push_back(pvcc);
            // Plane side: injected pin current (updated every step).
            i_vcc_idx.push_back(plane_nl.isources().size());
            plane_nl.add_isource("Ipin_vcc_" + site.name, pvcc, plane_nl.ground(),
                                 Source::dc(0.0));

            // Device side: supply voltage seen at the pin (updated every
            // step from the plane solution). The ground pin lands on the
            // reference directly.
            const NodeId bvcc = dev_nl.add_node(site.name + "_bvcc");
            v_vcc_idx.push_back(dev_nl.vsources().size());
            dev_nl.add_vsource("Vpin_vcc_" + site.name, bvcc, dev_nl.ground(),
                               Source::dc(board.vdd()));

            const NodeId dgnd = stamp_package_pin(dev_nl, site.name + "_gnd",
                                                  dev_nl.ground(),
                                                  dev_nl.ground(), site.gnd_pkg);
            const NodeId dvcc = stamp_package_pin(dev_nl, site.name + "_vcc",
                                                  bvcc, dgnd, site.vcc_pkg);
            const NodeId o = dev_nl.add_node(site.name + "_out");
            dev_nl.add_driver(site.name, o, dvcc, dgnd, site.driver);
            if (site.load_c > 0)
                dev_nl.add_capacitor("Cload_" + site.name, o, dgnd, site.load_c);
            dev_die_vcc.push_back(dvcc);
            dev_die_gnd.push_back(dgnd);
            dev_out.push_back(o);
        }
        // Signal nets belong to the device partition (§5.2, Fig. 3).
        for (std::size_t n = 0; n < board.signal_nets().size(); ++n) {
            const SignalNet& net = board.signal_nets()[n];
            stamp_signal_net(dev_nl, net, dev_out.at(net.driver_site),
                             "net" + std::to_string(n));
        }
        plane_step = std::make_unique<TransientStepper>(
            plane_nl, dt, Integrator::Trapezoidal, recovery);
        dev_step = std::make_unique<TransientStepper>(
            dev_nl, dt, Integrator::Trapezoidal, recovery);
    }
};

PartitionedCosim::PartitionedCosim(std::shared_ptr<const PlaneModel> plane,
                                   double dt, std::size_t active_decaps,
                                   const robust::RecoveryOptions& recovery)
    : impl_(std::make_unique<Impl>(std::move(plane), dt, active_decaps,
                                   recovery)) {}

PartitionedCosim::~PartitionedCosim() = default;

PartitionedCosim::Result PartitionedCosim::run(double tstop) {
    PGSI_TRACE_SCOPE("cosim.run");
    static obs::Counter& exchange_counter = obs::counter("cosim.exchanges");
    Impl& im = *impl_;
    const std::size_t nsites = im.plane_vcc_node.size();
    Result res;
    res.die_gnd.resize(nsites);
    res.die_vcc.resize(nsites);
    res.plane_vcc.resize(nsites);

    const auto steps = static_cast<std::size_t>(std::ceil(tstop / im.dt));
    for (std::size_t step = 1; step <= steps; ++step) {
        // 1. Device subsystem steps with the supply voltages the plane
        //    produced at the previous step (Gauss–Seidel lag).
        im.dev_step->step();
        // 2. Pin currents from the device solution are imposed on the plane
        //    ("the driver Vcc and Gnd currents are imposed upon the
        //    power/ground net as source").
        for (std::size_t s = 0; s < nsites; ++s) {
            // vsource current flows + -> source -> -, so the current the
            // device draws out of the Vcc pin is -I(Vpin_vcc).
            const double i_draw = -im.dev_step->vsource_current(im.v_vcc_idx[s]);
            im.plane_nl.isources()[im.i_vcc_idx[s]].src = Source::dc(i_draw);
        }
        res.stats.current_exchanges += nsites;
        // 3. Plane subsystem steps; the resulting supply noise is fed back.
        im.plane_step->step();
        for (std::size_t s = 0; s < nsites; ++s) {
            const double vcc = im.plane_step->node_voltage(im.plane_vcc_node[s]);
            im.dev_nl.vsources()[im.v_vcc_idx[s]].src = Source::dc(vcc);
        }
        res.stats.voltage_exchanges += nsites;
        exchange_counter.add(2 * nsites);
        ++res.stats.steps;

        res.time.push_back(step * im.dt);
        for (std::size_t s = 0; s < nsites; ++s) {
            res.die_gnd[s].push_back(im.dev_step->node_voltage(im.dev_die_gnd[s]));
            res.die_vcc[s].push_back(im.dev_step->node_voltage(im.dev_die_vcc[s]));
            res.plane_vcc[s].push_back(
                im.plane_step->node_voltage(im.plane_vcc_node[s]));
        }
    }
    res.stats.device = im.dev_step->stats();
    res.stats.plane = im.plane_step->stats();
    res.recovery.merge(im.dev_step->recovery_report());
    res.recovery.merge(im.plane_step->recovery_report());
    return res;
}

} // namespace pgsi
