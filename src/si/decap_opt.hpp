// Decoupling-capacitor placement optimization (§6.2: "optimize the
// decoupling strategy which includes the placement, number, and value of
// de-caps necessary for noise reduction against design margin").
//
// Greedy forward selection: starting from an empty population, repeatedly
// add the candidate decap that most reduces the worst-case noise metric,
// until the budget is spent or no candidate improves it. Greedy is the
// standard engineering heuristic for this submodular-ish objective and
// turns the paper's "play it safe and put as much as you could" practice
// into a ranked shopping list.
//
// A frequency-domain companion, pdn_impedance_profile, reports the supply
// impedance seen from a die across frequency — the modern target-impedance
// view of the same problem.
#pragma once

#include "si/cosim.hpp"

namespace pgsi {

/// Noise metric minimized by the optimizer.
enum class DecapObjective {
    PlaneNoise, ///< worst power-plane excursion at any pin
    VccDroop    ///< worst die-supply excursion
};

/// One greedy step of the optimization.
struct DecapPick {
    std::size_t candidate = 0; ///< index into Board::decaps()
    double noise_after = 0;    ///< objective value once this decap is added [V]
};

/// Optimization result.
struct DecapPlacementResult {
    double baseline_noise = 0;      ///< objective with no decaps [V]
    std::vector<DecapPick> picks;   ///< in selection order
    /// Final population (candidate indices) after all picks.
    std::vector<std::size_t> chosen() const {
        std::vector<std::size_t> out;
        for (const DecapPick& p : picks) out.push_back(p.candidate);
        return out;
    }
};

/// Greedily choose up to `budget` decaps from the board's candidate list
/// (all entries of Board::decaps() are candidates). The plane model must
/// have been built from the same board. Stops early when no candidate
/// improves the objective by more than `min_gain` (relative).
DecapPlacementResult optimize_decap_placement(
    std::shared_ptr<const PlaneModel> plane, std::size_t budget, double dt,
    double tstop, DecapObjective objective = DecapObjective::PlaneNoise,
    double min_gain = 0.01);

/// |Z(f)| of the power delivery network seen between die Vcc and die Gnd of
/// one site, with all drivers quiet — the PDN impedance profile as the chip
/// experiences it (package pins included).
VectorD pdn_impedance_profile(const SsnModel& model, std::size_t site,
                              const VectorD& freqs_hz);

/// |Z(f)| at the board-level Vcc pin of one site against the ground plane —
/// the plane + decap + regulator portion of the PDN, where decoupling
/// capacitors act.
VectorD pdn_impedance_profile_board(const SsnModel& model, std::size_t site,
                                    const VectorD& freqs_hz);

} // namespace pgsi
