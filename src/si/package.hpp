// Chip-package parasitics (§5.2: "chip package modeling involves mostly
// parasitic extraction for parameters such as pin inductance and capacitance,
// and the package is modeled as a few circuit elements").
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace pgsi {

/// One package pin: series inductance + resistance from board to die, plus a
/// shunt capacitance on the die side.
struct PackagePin {
    double l = 5e-9;  ///< pin + bondwire inductance [H]
    double r = 0.05;  ///< pin resistance [ohm]
    double c = 0.5e-12; ///< die-side pad capacitance to the local reference [F]
};

/// Typical pin parasitics for common package families, for convenience in
/// examples and benches.
namespace packages {
/// Through-hole DIP: long lead frames.
inline constexpr PackagePin dip{12e-9, 0.1, 1e-12};
/// PQFP: mid-length lead frames.
inline constexpr PackagePin pqfp{6e-9, 0.06, 0.7e-12};
/// BGA: short escape routes.
inline constexpr PackagePin bga{2e-9, 0.03, 0.4e-12};
} // namespace packages

/// Stamp one package pin between a board-level node and a new die-side node.
/// `ref` is the node the die-side shunt capacitance returns to (usually the
/// die ground). Returns the created die-side node.
NodeId stamp_package_pin(Netlist& nl, const std::string& name, NodeId board_node,
                         NodeId ref, const PackagePin& pin);

} // namespace pgsi
