#include "si/board.hpp"

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

Board::Board(double width, double height, BoardStackup stackup, double vdd)
    : width_(width), height_(height), stackup_(stackup), vdd_(vdd) {
    PGSI_REQUIRE(width > 0 && height > 0, "Board: extents must be positive");
    PGSI_REQUIRE(stackup_.plane_separation > 0,
                 "Board: plane separation must be positive");
    PGSI_REQUIRE(vdd > 0, "Board: vdd must be positive");
}

Board make_ssn_eval_board(int switching, double trise, double vdd) {
    PGSI_REQUIRE(switching >= 0 && switching <= 16,
                 "make_ssn_eval_board: 0..16 drivers can switch");
    // 7 x 10 inch six-layer FR4 board, power/ground planes 30 mil apart.
    BoardStackup st;
    st.plane_separation = 30.0 * units::mil;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    Board board(7.0 * units::inch, 10.0 * units::inch, st, vdd);
    board.set_vrm_location({0.5 * units::inch, 0.5 * units::inch});

    // One chip (PQFP) near the board center; sixteen drivers with pins along
    // the package edge on a 1.27 mm pitch.
    const Point2 chip{3.5 * units::inch, 5.0 * units::inch};
    for (int d = 0; d < 16; ++d) {
        DriverSite s;
        s.name = "drv" + std::to_string(d);
        const double dx = (d - 7.5) * 1.27e-3;
        s.vcc_pin = {chip.x + dx, chip.y + 8e-3};
        s.gnd_pin = {chip.x + dx, chip.y - 8e-3};
        s.driver.ron_up = 25.0;
        s.driver.ron_dn = 20.0;
        s.driver.c_out = 4e-12;
        s.load_c = 30e-12;
        if (d < switching) {
            // Rising output: slew-limited logic waveform 0 -> 1.
            s.driver.input =
                Source::pulse(0.0, 1.0, 1e-9, trise, trise, 6e-9, 0.0);
        } else {
            s.driver.input = Source::dc(0.0);
        }
        board.add_driver_site(s);
    }
    return board;
}

Board make_postlayout_board(unsigned seed) {
    // Four-layer board with a 10 mil plane pair, twenty-six chips,
    // 55 Vcc + 80 Gnd pins total (§6.2 example 2).
    BoardStackup st;
    st.plane_separation = 10.0 * units::mil;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    const double w = 9.0 * units::inch, h = 6.0 * units::inch;
    Board board(w, h, st, 5.0);
    board.set_vrm_location({0.4 * units::inch, 0.4 * units::inch});

    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ux(0.08 * w, 0.92 * w);
    std::uniform_real_distribution<double> uy(0.08 * h, 0.92 * h);
    std::uniform_real_distribution<double> uphase(0.0, 2e-9);
    std::uniform_int_distribution<int> uload(10, 40);

    constexpr int n_chips = 26;
    constexpr int n_vcc = 55;   // one driver site per Vcc pin
    constexpr int n_gnd = 80;   // 55 paired with sites + 25 stitching vias
    std::vector<Point2> chip_pos;
    for (int c = 0; c < n_chips; ++c) chip_pos.push_back({ux(rng), uy(rng)});

    for (int p = 0; p < n_vcc; ++p) {
        const int c = p % n_chips;
        const int local = p / n_chips;
        DriverSite s;
        s.name = "u" + std::to_string(c) + "_d" + std::to_string(local);
        const double dx = (local - 1) * 2.54e-3;
        s.vcc_pin = {chip_pos[c].x + dx, chip_pos[c].y + 6e-3};
        s.gnd_pin = {chip_pos[c].x + dx, chip_pos[c].y - 6e-3};
        s.driver.ron_up = 22.0;
        s.driver.ron_dn = 18.0;
        s.driver.c_out = 4e-12;
        s.load_c = uload(rng) * 1e-12;
        // Roughly a third of the outputs switch in this event, with
        // staggered starts.
        if (p % 3 == 0)
            s.driver.input = Source::pulse(0.0, 1.0, 1e-9 + uphase(rng), 0.8e-9,
                                           0.8e-9, 6e-9, 0.0);
        else
            s.driver.input = Source::dc(0.0);
        board.add_driver_site(s);
    }
    for (int g = 0; g < n_gnd - n_vcc; ++g)
        board.add_gnd_stitch({ux(rng), uy(rng)});

    // A modest stock decoupling population near the chips.
    for (int c = 0; c < n_chips; c += 2) {
        Decap d;
        d.pos = {chip_pos[c].x + 9e-3, chip_pos[c].y};
        d.c = 100e-9;
        d.esr = 30e-3;
        d.esl = 1.2e-9;
        board.add_decap(d);
    }
    return board;
}

} // namespace pgsi
