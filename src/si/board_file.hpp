// Text file format for board descriptions, so the CLI tools and scripts can
// drive the flow without writing C++. Line oriented, '#' comments, SPICE
// value suffixes (30mil is not supported — use metres or suffixed numbers):
//
//   board  <width> <height>            # plane extents [m]
//   stackup sep <d> eps <er> sheet <rs>
//   vdd    <volts>
//   vrm    <x> <y>
//   cutout <x0> <y0> <x1> <y1>         # power-plane cutout rectangle
//   driver <name> vcc <x> <y> gnd <x> <y> [ron_up r] [ron_dn r] [cout c]
//          [load c] [switch rise <tr> delay <td> width <tw>]
//   decap  <x> <y> [c <f>] [esr <r>] [esl <l>]
//   stitch <x> <y>
//
// Unknown keys raise errors with line numbers. A writer produces files the
// parser round-trips.
#pragma once

#include <iosfwd>
#include <string>

#include "si/board.hpp"

namespace pgsi {

/// Parse a board description. Throws InvalidArgument with a line reference
/// on malformed input.
Board parse_board_file(const std::string& text);

/// Load from a file path.
Board load_board_file(const std::string& path);

/// Serialize a board to the same format.
void write_board_file(std::ostream& os, const Board& board);
std::string board_file_string(const Board& board);

} // namespace pgsi
