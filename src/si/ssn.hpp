// Simultaneous-switching-noise studies (§6.2): ground-noise scaling with the
// number of switching drivers, and decoupling-capacitor effectiveness
// ("simulate the effect of de-caps and thus optimize the decoupling strategy
// which includes the placement, number, and value of de-caps").
#pragma once

#include "si/cosim.hpp"

namespace pgsi {

/// One row of the switching-count study.
struct SwitchingSweepRow {
    int n_switching = 0;
    double peak_gnd_bounce = 0;  ///< worst die-ground excursion [V]
    double peak_vcc_droop = 0;   ///< worst die-Vcc excursion [V]
    double peak_plane_noise = 0; ///< worst power-plane excursion at a pin [V]
};

/// Ground noise versus how many of the 16 drivers of the §6.2 pre-layout
/// board switch together. The plane extraction is performed once and reused.
std::vector<SwitchingSweepRow> sweep_switching_drivers(
    const std::vector<int>& switching_counts, const SsnModelOptions& options,
    double dt, double tstop);

/// One row of the decap study.
struct DecapSweepRow {
    std::size_t n_decaps = 0;
    double total_capacitance = 0; ///< [F]
    double peak_gnd_bounce = 0;
    double peak_vcc_droop = 0;
    double peak_plane_noise = 0;
};

/// Noise versus populated decap count on the §6.2 pre-layout board with all
/// 16 drivers switching. Candidate decaps ring the chip; populating happens
/// nearest-first.
std::vector<DecapSweepRow> sweep_decap_count(std::size_t max_decaps,
                                             const Decap& prototype,
                                             const SsnModelOptions& options,
                                             double dt, double tstop);

/// Helper shared by the sweeps and benches: run one SsnModel and report the
/// three peak-noise figures.
SwitchingSweepRow measure_noise(const SsnModel& model, double dt, double tstop);

/// Worst-case switching-pattern search ("different combination of drivers
/// switching", §6.2): greedily grow the set of simultaneously switching
/// drivers that maximizes the worst shared-plane noise, up to `max_switching`
/// drivers. Far cheaper than the 2^N exhaustive search and standard practice
/// for SSN sign-off.
struct SwitchingPatternResult {
    std::vector<std::size_t> pattern; ///< driver sites chosen, in pick order
    VectorD noise_after;              ///< worst noise after each pick [V]
};
SwitchingPatternResult find_worst_switching_pattern(
    std::shared_ptr<const PlaneModel> plane, std::size_t max_switching,
    const Source& switching_input, double dt, double tstop);

} // namespace pgsi
