#include "si/decap_opt.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/ac.hpp"
#include "common/error.hpp"

namespace pgsi {

namespace {

double objective_value(const SsnModel& model, double dt, double tstop,
                       DecapObjective objective) {
    const std::size_t nsites = model.netlist().drivers().size();
    std::vector<NodeId> probes;
    for (std::size_t s = 0; s < nsites; ++s) {
        probes.push_back(objective == DecapObjective::PlaneNoise
                             ? model.board_vcc(s)
                             : model.die_vcc(s));
    }
    const TransientResult r = model.simulate(dt, tstop, probes);
    double worst = 0;
    for (NodeId n : probes) worst = std::max(worst, r.peak_excursion(n));
    return worst;
}

} // namespace

DecapPlacementResult optimize_decap_placement(
    std::shared_ptr<const PlaneModel> plane, std::size_t budget, double dt,
    double tstop, DecapObjective objective, double min_gain) {
    PGSI_REQUIRE(plane != nullptr, "optimize_decap_placement: null plane model");
    const std::size_t n_candidates = plane->board().decaps().size();
    PGSI_REQUIRE(n_candidates > 0,
                 "optimize_decap_placement: board has no candidate decaps");

    DecapPlacementResult res;
    {
        const SsnModel empty(plane, std::vector<std::size_t>{});
        res.baseline_noise = objective_value(empty, dt, tstop, objective);
    }

    std::vector<std::size_t> population;
    std::vector<bool> used(n_candidates, false);
    double current = res.baseline_noise;

    for (std::size_t step = 0; step < budget; ++step) {
        double best_noise = current;
        std::size_t best = n_candidates;
        for (std::size_t c = 0; c < n_candidates; ++c) {
            if (used[c]) continue;
            std::vector<std::size_t> trial = population;
            trial.push_back(c);
            const SsnModel model(plane, trial);
            const double noise = objective_value(model, dt, tstop, objective);
            if (noise < best_noise) {
                best_noise = noise;
                best = c;
            }
        }
        if (best == n_candidates || best_noise > current * (1.0 - min_gain))
            break; // nothing (sufficiently) helpful left
        used[best] = true;
        population.push_back(best);
        current = best_noise;
        res.picks.push_back({best, best_noise});
    }
    return res;
}

VectorD pdn_impedance_profile_board(const SsnModel& model, std::size_t site,
                                    const VectorD& freqs_hz) {
    Netlist nl = model.netlist();
    nl.add_isource("Ipdn_probe", nl.ground(), model.board_vcc(site),
                   Source::dc(0.0).set_ac(1.0));
    VectorD z(freqs_hz.size());
    for (std::size_t i = 0; i < freqs_hz.size(); ++i) {
        const AcSolution s = ac_analyze(nl, freqs_hz[i]);
        z[i] = std::abs(s.v(model.board_vcc(site)));
    }
    return z;
}

VectorD pdn_impedance_profile(const SsnModel& model, std::size_t site,
                              const VectorD& freqs_hz) {
    // Probe with a 1 A AC source between die Vcc and die Gnd, drivers quiet
    // (their t = 0 conductances apply).
    Netlist nl = model.netlist();
    nl.add_isource("Ipdn_probe", model.die_gnd(site), model.die_vcc(site),
                   Source::dc(0.0).set_ac(1.0));
    VectorD z(freqs_hz.size());
    for (std::size_t i = 0; i < freqs_hz.size(); ++i) {
        const AcSolution s = ac_analyze(nl, freqs_hz[i]);
        z[i] = std::abs(s.v(model.die_vcc(site)) - s.v(model.die_gnd(site)));
    }
    return z;
}

} // namespace pgsi
