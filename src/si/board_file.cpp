#include "si/board_file.hpp"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "circuit/parser.hpp"
#include "common/error.hpp"

namespace pgsi {

namespace {

[[noreturn]] void fail(int lineno, const std::string& msg) {
    throw InvalidArgument("board file, line " + std::to_string(lineno) + ": " +
                          msg);
}

double num(const std::vector<std::string>& t, std::size_t i, int lineno) {
    if (i >= t.size()) fail(lineno, "missing numeric field");
    try {
        return parse_spice_value(t[i]);
    } catch (const InvalidArgument&) {
        fail(lineno, "bad number '" + t[i] + "'");
    }
}

double positive(const std::vector<std::string>& t, std::size_t i, int lineno,
                const char* what) {
    const double v = num(t, i, lineno);
    if (!(v > 0))
        fail(lineno, std::string(what) + " must be positive, got '" + t[i] +
                         "'");
    return v;
}

std::vector<std::string> tokens(const std::string& line) {
    std::istringstream is(line);
    std::vector<std::string> t;
    std::string w;
    while (is >> w) {
        if (w[0] == '#') break;
        t.push_back(w);
    }
    return t;
}

} // namespace

Board parse_board_file(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    int lineno = 0;

    std::optional<double> width, height;
    BoardStackup stackup;
    bool have_sep = false;
    double vdd = 5.0;
    std::optional<Point2> vrm;
    std::vector<Polygon> cutouts;
    std::vector<DriverSite> sites;
    std::vector<Decap> decaps;
    std::vector<Point2> stitches;

    while (std::getline(is, line)) {
        ++lineno;
        const std::vector<std::string> t = tokens(line);
        if (t.empty()) continue;
        const std::string& key = t[0];

        if (key == "board") {
            width = positive(t, 1, lineno, "board width");
            height = positive(t, 2, lineno, "board height");
        } else if (key == "stackup") {
            for (std::size_t i = 1; i + 1 < t.size(); i += 2) {
                if (t[i] == "sep") {
                    stackup.plane_separation =
                        positive(t, i + 1, lineno, "stackup sep");
                    have_sep = true;
                } else if (t[i] == "eps") {
                    stackup.eps_r = positive(t, i + 1, lineno, "stackup eps");
                } else if (t[i] == "sheet") {
                    stackup.sheet_resistance =
                        positive(t, i + 1, lineno, "stackup sheet");
                } else {
                    fail(lineno, "unknown stackup key '" + t[i] + "'");
                }
            }
        } else if (key == "vdd") {
            vdd = num(t, 1, lineno);
        } else if (key == "vrm") {
            vrm = Point2{num(t, 1, lineno), num(t, 2, lineno)};
        } else if (key == "cutout") {
            cutouts.push_back(Polygon::rectangle(num(t, 1, lineno),
                                                 num(t, 2, lineno),
                                                 num(t, 3, lineno),
                                                 num(t, 4, lineno)));
        } else if (key == "driver") {
            if (t.size() < 8) fail(lineno, "driver needs: name vcc x y gnd x y");
            DriverSite s;
            s.name = t[1];
            std::size_t i = 2;
            bool have_vcc = false, have_gnd = false;
            while (i < t.size()) {
                if (t[i] == "vcc") {
                    s.vcc_pin = {num(t, i + 1, lineno), num(t, i + 2, lineno)};
                    have_vcc = true;
                    i += 3;
                } else if (t[i] == "gnd") {
                    s.gnd_pin = {num(t, i + 1, lineno), num(t, i + 2, lineno)};
                    have_gnd = true;
                    i += 3;
                } else if (t[i] == "ron_up") {
                    s.driver.ron_up = num(t, i + 1, lineno);
                    i += 2;
                } else if (t[i] == "ron_dn") {
                    s.driver.ron_dn = num(t, i + 1, lineno);
                    i += 2;
                } else if (t[i] == "cout") {
                    s.driver.c_out = num(t, i + 1, lineno);
                    i += 2;
                } else if (t[i] == "load") {
                    s.load_c = num(t, i + 1, lineno);
                    i += 2;
                } else if (t[i] == "switch") {
                    // switch rise <tr> delay <td> width <tw>
                    double tr = 1e-9, td = 1e-9, tw = 5e-9;
                    i += 1;
                    while (i + 1 < t.size() &&
                           (t[i] == "rise" || t[i] == "delay" || t[i] == "width")) {
                        const double v = num(t, i + 1, lineno);
                        if (t[i] == "rise") tr = v;
                        if (t[i] == "delay") td = v;
                        if (t[i] == "width") tw = v;
                        i += 2;
                    }
                    s.driver.input = Source::pulse(0, 1, td, tr, tr, tw);
                } else {
                    fail(lineno, "unknown driver key '" + t[i] + "'");
                }
            }
            if (!have_vcc || !have_gnd) fail(lineno, "driver needs vcc and gnd pins");
            for (const DriverSite& prev : sites)
                if (prev.name == s.name)
                    fail(lineno, "duplicate driver name '" + s.name + "'");
            sites.push_back(std::move(s));
        } else if (key == "decap") {
            Decap d;
            d.pos = {num(t, 1, lineno), num(t, 2, lineno)};
            std::size_t i = 3;
            while (i + 1 < t.size() + 1 && i < t.size()) {
                if (t[i] == "c")
                    d.c = positive(t, i + 1, lineno, "decap c");
                else if (t[i] == "esr")
                    d.esr = num(t, i + 1, lineno);
                else if (t[i] == "esl")
                    d.esl = num(t, i + 1, lineno);
                else
                    fail(lineno, "unknown decap key '" + t[i] + "'");
                i += 2;
            }
            decaps.push_back(d);
        } else if (key == "stitch") {
            stitches.push_back({num(t, 1, lineno), num(t, 2, lineno)});
        } else {
            fail(lineno, "unknown directive '" + key + "'");
        }
    }

    if (!width || !height) throw InvalidArgument("board file: missing 'board' line");
    if (!have_sep) throw InvalidArgument("board file: missing 'stackup sep'");
    Board board(*width, *height, stackup, vdd);
    if (vrm) board.set_vrm_location(*vrm);
    for (const Polygon& c : cutouts) board.add_power_plane_cutout(c);
    for (const DriverSite& s : sites) board.add_driver_site(s);
    for (const Decap& d : decaps) board.add_decap(d);
    for (const Point2& p : stitches) board.add_gnd_stitch(p);
    return board;
}

Board load_board_file(const std::string& path) {
    std::ifstream f(path);
    PGSI_REQUIRE(f.good(), "load_board_file: cannot open '" + path + "'");
    std::ostringstream os;
    os << f.rdbuf();
    return parse_board_file(os.str());
}

void write_board_file(std::ostream& os, const Board& board) {
    os.precision(9);
    os << "# pgsi board description\n";
    os << "board " << board.width() << " " << board.height() << "\n";
    os << "stackup sep " << board.stackup().plane_separation << " eps "
       << board.stackup().eps_r << " sheet " << board.stackup().sheet_resistance
       << "\n";
    os << "vdd " << board.vdd() << "\n";
    os << "vrm " << board.vrm_location().x << " " << board.vrm_location().y
       << "\n";
    for (const Polygon& c : board.power_plane_cutouts()) {
        const Bbox b = c.bbox();
        os << "cutout " << b.x0 << " " << b.y0 << " " << b.x1 << " " << b.y1
           << "\n";
    }
    for (const DriverSite& s : board.driver_sites()) {
        os << "driver " << s.name << " vcc " << s.vcc_pin.x << " " << s.vcc_pin.y
           << " gnd " << s.gnd_pin.x << " " << s.gnd_pin.y << " ron_up "
           << s.driver.ron_up << " ron_dn " << s.driver.ron_dn << " cout "
           << s.driver.c_out << " load " << s.load_c;
        if (s.driver.input.kind() == Source::Kind::Pulse) {
            const Source::PulseParams p = s.driver.input.pulse_params();
            os << " switch rise " << p.rise << " delay " << p.delay
               << " width " << p.width;
        }
        os << "\n";
    }
    for (const Decap& d : board.decaps())
        os << "decap " << d.pos.x << " " << d.pos.y << " c " << d.c << " esr "
           << d.esr << " esl " << d.esl << "\n";
    for (const Point2& p : board.gnd_stitches())
        os << "stitch " << p.x << " " << p.y << "\n";
}

std::string board_file_string(const Board& board) {
    std::ostringstream os;
    write_board_file(os, board);
    return os.str();
}

} // namespace pgsi
