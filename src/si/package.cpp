#include "si/package.hpp"

#include "common/error.hpp"

namespace pgsi {

NodeId stamp_package_pin(Netlist& nl, const std::string& name, NodeId board_node,
                         NodeId ref, const PackagePin& pin) {
    PGSI_REQUIRE(pin.l > 0, "stamp_package_pin: inductance must be positive");
    const NodeId die = nl.add_node(name + "_die");
    if (pin.r > 0) {
        const NodeId mid = nl.add_node(name + "_mid");
        nl.add_resistor("R" + name, board_node, mid, pin.r);
        nl.add_inductor("L" + name, mid, die, pin.l);
    } else {
        nl.add_inductor("L" + name, board_node, die, pin.l);
    }
    if (pin.c > 0 && die != ref) nl.add_capacitor("C" + name, die, ref, pin.c);
    return die;
}

} // namespace pgsi
