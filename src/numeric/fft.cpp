#include "numeric/fft.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace pgsi {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// e^{-i pi k^2 / n} evaluated with the quadratic phase reduced mod 2n before
// the multiply by pi/n: k^2 grows past the point where the raw product
// pi*k^2/n keeps absolute accuracy, while k^2 mod 2n stays small and exact
// (k^2 is an exact double well beyond any practical transform length).
Complex chirp(std::size_t k, std::size_t n) {
    const double k2 = std::fmod(static_cast<double>(k) * static_cast<double>(k),
                                2.0 * static_cast<double>(n));
    const double ang = -pi * k2 / static_cast<double>(n);
    return Complex(std::cos(ang), std::sin(ang));
}

} // namespace

struct Fft::Bluestein {
    std::size_t m = 0;        // power-of-two convolution length >= 2n-1
    Fft sub;                  // radix-2 plan of size m
    VectorC a;                // a_k = e^{-i pi k^2/n}, k < n
    VectorC bhat;             // forward transform of the chirp filter b

    explicit Bluestein(std::size_t n)
        : m(next_pow2(2 * n - 1)), sub(m), a(n), bhat(m) {
        for (std::size_t k = 0; k < n; ++k) a[k] = chirp(k, n);
        // b_j = conj(a_|j|) wrapped circularly: b[0..n-1] and b[m-j] = b[j].
        for (std::size_t k = 0; k < n; ++k) {
            const Complex b = std::conj(a[k]);
            bhat[k] = b;
            if (k > 0) bhat[m - k] = b;
        }
        sub.forward(bhat.data());
    }
};

Fft::~Fft() = default;
Fft::Fft(Fft&&) noexcept = default;
Fft& Fft::operator=(Fft&&) noexcept = default;

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

Fft::Fft(std::size_t n) : n_(n) {
    PGSI_REQUIRE(n >= 1, "Fft: transform length must be >= 1");
    if (!is_pow2(n_)) {
        blue_ = std::make_unique<const Bluestein>(n_);
        return;
    }
    rev_.resize(n_);
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n_) ++bits;
    for (std::size_t i = 0; i < n_; ++i) {
        std::size_t r = 0;
        for (std::size_t b = 0; b < bits; ++b)
            if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
        rev_[i] = r;
    }
    tw_.resize(n_ / 2);
    for (std::size_t k = 0; k < tw_.size(); ++k) {
        const double ang = -2.0 * pi * static_cast<double>(k) / static_cast<double>(n_);
        tw_[k] = Complex(std::cos(ang), std::sin(ang));
    }
}

void Fft::radix2_transform(Complex* x, bool inv) const {
    const std::size_t n = n_;
    for (std::size_t i = 0; i < n; ++i)
        if (i < rev_[i]) std::swap(x[i], x[rev_[i]]);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len >> 1;
        const std::size_t step = n / len;
        for (std::size_t base = 0; base < n; base += len) {
            for (std::size_t j = 0; j < half; ++j) {
                const Complex w =
                    inv ? std::conj(tw_[j * step]) : tw_[j * step];
                const Complex u = x[base + j];
                const Complex v = x[base + j + half] * w;
                x[base + j] = u + v;
                x[base + j + half] = u - v;
            }
        }
    }
}

void Fft::bluestein_forward(Complex* x) const {
    const Bluestein& bl = *blue_;
    VectorC buf(bl.m, Complex{});
    for (std::size_t k = 0; k < n_; ++k) buf[k] = x[k] * bl.a[k];
    bl.sub.forward(buf.data());
    for (std::size_t k = 0; k < bl.m; ++k) buf[k] *= bl.bhat[k];
    bl.sub.inverse(buf.data());
    for (std::size_t k = 0; k < n_; ++k) x[k] = buf[k] * bl.a[k];
}

void Fft::forward(Complex* data) const {
    if (n_ == 1) return;
    if (blue_)
        bluestein_forward(data);
    else
        radix2_transform(data, false);
}

void Fft::inverse(Complex* data) const {
    if (n_ == 1) return;
    if (blue_) {
        // DFT^{-1}(x) = conj(DFT(conj(x))) / n: reuses the forward chirp.
        for (std::size_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]);
        bluestein_forward(data);
        const double s = 1.0 / static_cast<double>(n_);
        for (std::size_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]) * s;
        return;
    }
    radix2_transform(data, true);
    const double s = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k) data[k] *= s;
}

VectorC fft(VectorC data) {
    Fft(data.size()).forward(data.data());
    return data;
}

VectorC ifft(VectorC data) {
    Fft(data.size()).inverse(data.data());
    return data;
}

void fft_2d(Complex* data, std::size_t ny, std::size_t nx, const Fft& fy,
            const Fft& fx, bool inverse) {
    PGSI_REQUIRE(fx.size() == nx && fy.size() == ny,
                 "fft_2d: plan sizes do not match the grid");
    par::parallel_for_chunked(ny, 0, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            Complex* row = data + r * nx;
            if (inverse)
                fx.inverse(row);
            else
                fx.forward(row);
        }
    });
    if (ny == 1) return;
    par::parallel_for_chunked(nx, 0, [&](std::size_t c0, std::size_t c1) {
        VectorC col(ny);
        for (std::size_t c = c0; c < c1; ++c) {
            for (std::size_t r = 0; r < ny; ++r) col[r] = data[r * nx + c];
            if (inverse)
                fy.inverse(col.data());
            else
                fy.forward(col.data());
            for (std::size_t r = 0; r < ny; ++r) data[r * nx + c] = col[r];
        }
    });
}

} // namespace pgsi
