// From-scratch complex FFT (radix-2 plus Bluestein for arbitrary sizes).
//
// The matrix-free BEM solver applies the translation-invariant P/L
// interaction tables as discrete convolutions; those reduce to forward and
// inverse DFTs of the circulant-embedded kernels and of the scattered
// element data. pgsi carries no external numerical dependencies, so the
// transforms are implemented here:
//
//   * power-of-two sizes use the iterative radix-2 Cooley-Tukey algorithm
//     with a precomputed bit-reversal permutation and twiddle table;
//   * every other size goes through Bluestein's chirp-z identity
//     X_k = a_k * sum_j (x_j a_j) b_{k-j},  a_k = e^{-i pi k^2 / n},
//     which rewrites an arbitrary-length DFT as one power-of-two circular
//     convolution (size >= 2n-1) and is exact for prime n.
//
// A plan object (Fft) owns the tables for one size; transforms are
// in-place, serial and allocation-free on the power-of-two path, so results
// are bitwise independent of thread count — each worker transforms whole
// rows/columns. Forward uses the e^{-2*pi*i*jk/n} kernel; inverse includes
// the 1/n normalization.
#pragma once

#include <memory>

#include "numeric/matrix.hpp"

namespace pgsi {

/// Transform plan for one fixed length n >= 1.
class Fft {
public:
    explicit Fft(std::size_t n);
    ~Fft(); // out of line: Bluestein is incomplete here
    Fft(Fft&&) noexcept;
    Fft& operator=(Fft&&) noexcept;

    std::size_t size() const { return n_; }

    /// In-place forward DFT: X_k = sum_j x_j e^{-2 pi i jk/n}.
    void forward(Complex* data) const;

    /// In-place inverse DFT (scaled by 1/n): exact round trip with forward.
    void inverse(Complex* data) const;

    /// True when this plan runs the radix-2 path (no Bluestein scratch).
    bool radix2() const { return blue_ == nullptr; }

private:
    struct Bluestein;

    void radix2_transform(Complex* data, bool inv) const;
    void bluestein_forward(Complex* data) const;

    std::size_t n_ = 1;
    std::vector<std::size_t> rev_;  // bit-reversal permutation (radix-2)
    VectorC tw_;                    // forward twiddles e^{-2 pi i k/n}, k < n/2
    std::unique_ptr<const Bluestein> blue_; // non-null for non-power-of-two n
};

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// One-shot forward/inverse transforms (build a plan internally).
VectorC fft(VectorC data);
VectorC ifft(VectorC data);

/// In-place 2-D transform of row-major data[ny][nx] using prebuilt row and
/// column plans (fx.size() == nx, fy.size() == ny). Rows and columns are
/// distributed over the pgsi::par pool; each 1-D transform runs serially on
/// one worker, so results are bitwise identical at any thread count.
void fft_2d(Complex* data, std::size_t ny, std::size_t nx, const Fft& fy,
            const Fft& fx, bool inverse);

} // namespace pgsi
