// Dense, row-major matrix and vector utilities.
//
// pgsi carries its own small dense linear-algebra layer: the BEM system
// matrices (potential coefficients, partial inductances) are inherently dense,
// and the meshes used for power/ground plane extraction are sized so that
// dense factorizations stay within seconds on a workstation — the operating
// point the paper targets (§2).
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "numeric/gemm.hpp"
#include "obs/resource.hpp"

namespace pgsi {

using Complex = std::complex<double>;

/// Dense row-major matrix over T (double or std::complex<double>).
template <class T>
class Matrix {
public:
    /// Empty 0x0 matrix.
    Matrix() = default;

    /// rows x cols matrix, zero-initialized.
    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init) {
        obs::note_matrix_alloc(data_.size() * sizeof(T));
    }

    /// Build from nested initializer list (row by row). Rows must be equal length.
    Matrix(std::initializer_list<std::initializer_list<T>> rows) {
        rows_ = rows.size();
        cols_ = rows_ ? rows.begin()->size() : 0;
        data_.reserve(rows_ * cols_);
        for (const auto& r : rows) {
            PGSI_REQUIRE(r.size() == cols_, "ragged initializer list");
            data_.insert(data_.end(), r.begin(), r.end());
        }
        obs::note_matrix_alloc(data_.size() * sizeof(T));
    }

    /// Identity matrix of size n.
    static Matrix identity(std::size_t n) {
        Matrix m(n, n);
        for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
        return m;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }
    bool square() const { return rows_ == cols_; }

    T& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
    const T& operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

    /// Raw storage access (row-major), for tight inner loops.
    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }
    /// Pointer to the start of row i.
    T* row(std::size_t i) { return data_.data() + i * cols_; }
    const T* row(std::size_t i) const { return data_.data() + i * cols_; }

    /// Transposed copy.
    Matrix transposed() const {
        Matrix t(cols_, rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
        return t;
    }

    /// Extract the submatrix with the given row and column index sets.
    Matrix submatrix(const std::vector<std::size_t>& ri,
                     const std::vector<std::size_t>& ci) const {
        Matrix s(ri.size(), ci.size());
        for (std::size_t i = 0; i < ri.size(); ++i) {
            PGSI_REQUIRE(ri[i] < rows_, "row index out of range");
            for (std::size_t j = 0; j < ci.size(); ++j) {
                PGSI_REQUIRE(ci[j] < cols_, "column index out of range");
                s(i, j) = (*this)(ri[i], ci[j]);
            }
        }
        return s;
    }

    Matrix& operator+=(const Matrix& o) {
        PGSI_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
        for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
        return *this;
    }
    Matrix& operator-=(const Matrix& o) {
        PGSI_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
        for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
        return *this;
    }
    Matrix& operator*=(T s) {
        for (auto& v : data_) v *= s;
        return *this;
    }

    friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
    friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
    friend Matrix operator*(Matrix a, T s) { return a *= s; }
    friend Matrix operator*(T s, Matrix a) { return a *= s; }

    /// Matrix-matrix product. Cache-blocked and pool-parallel for the
    /// double/complex instantiations (numeric/gemm.hpp); scalar fallback
    /// otherwise.
    friend Matrix operator*(const Matrix& a, const Matrix& b) {
        PGSI_REQUIRE(a.cols_ == b.rows_, "shape mismatch in matrix product");
        Matrix c(a.rows_, b.cols_);
        if constexpr (std::is_same_v<T, double> ||
                      std::is_same_v<T, std::complex<double>>) {
            detail::gemm_update(T{1}, a.data(), a.cols_, b.data(), b.cols_,
                                c.data(), c.cols_, a.rows_, a.cols_, b.cols_);
        } else {
            for (std::size_t i = 0; i < a.rows_; ++i) {
                for (std::size_t k = 0; k < a.cols_; ++k) {
                    const T aik = a(i, k);
                    if (aik == T{}) continue;
                    const T* brow = b.row(k);
                    T* crow = c.row(i);
                    for (std::size_t j = 0; j < b.cols_; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
        return c;
    }

    /// Matrix-vector product.
    friend std::vector<T> operator*(const Matrix& a, const std::vector<T>& x) {
        PGSI_REQUIRE(a.cols_ == x.size(), "shape mismatch in matrix-vector product");
        std::vector<T> y(a.rows_, T{});
        for (std::size_t i = 0; i < a.rows_; ++i) {
            const T* arow = a.row(i);
            T acc{};
            for (std::size_t j = 0; j < a.cols_; ++j) acc += arow[j] * x[j];
            y[i] = acc;
        }
        return y;
    }

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    double max_abs() const {
        double m = 0;
        for (const auto& v : data_) m = std::max(m, std::abs(v));
        return m;
    }

    /// Symmetry defect: max |A - A^T| entry. Zero for symmetric matrices.
    double asymmetry() const {
        PGSI_REQUIRE(square(), "asymmetry() requires a square matrix");
        double m = 0;
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = i + 1; j < cols_; ++j)
                m = std::max(m, std::abs((*this)(i, j) - (*this)(j, i)));
        return m;
    }

private:
    std::size_t rows_ = 0, cols_ = 0;
    std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<Complex>;
using VectorD = std::vector<double>;
using VectorC = std::vector<Complex>;

/// Euclidean norm of a vector.
double norm2(const VectorD& v);
double norm2(const VectorC& v);

/// Maximum absolute entry of a vector.
double max_abs(const VectorD& v);
double max_abs(const VectorC& v);

/// Dot product (no conjugation).
double dot(const VectorD& a, const VectorD& b);

/// y += s * x
void axpy(double s, const VectorD& x, VectorD& y);

/// Promote a real matrix to a complex one.
MatrixC to_complex(const MatrixD& m);

/// Real and imaginary parts of a complex matrix.
MatrixD real_part(const MatrixC& m);
MatrixD imag_part(const MatrixC& m);

} // namespace pgsi
