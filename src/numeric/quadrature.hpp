// Gauss-Legendre quadrature rules on [-1, 1] and helpers for 1-D / 2-D
// integration over intervals and rectangles. Used by the Galerkin testing
// procedure (§3.2) and by the partial-inductance cross integrals.
#pragma once

#include <functional>
#include <vector>

#include "numeric/matrix.hpp"

namespace pgsi {

/// A one-dimensional quadrature rule: sum_i w[i] * f(x[i]) integrates f over [-1,1].
struct QuadratureRule {
    VectorD nodes;
    VectorD weights;
};

/// Gauss-Legendre rule with n points (1 <= n <= 16), exact for polynomials of
/// degree 2n-1. Nodes are computed by Newton iteration on the Legendre
/// polynomial and cached per order.
const QuadratureRule& gauss_legendre(int n);

/// Integrate f over [a, b] with an n-point Gauss rule.
double integrate(const std::function<double(double)>& f, double a, double b, int n);

/// Integrate f over the rectangle [ax,bx] x [ay,by] with an n x n tensor
/// Gauss rule.
double integrate2d(const std::function<double(double, double)>& f, double ax,
                   double bx, double ay, double by, int n);

} // namespace pgsi
