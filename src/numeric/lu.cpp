#include "numeric/lu.hpp"

#include <cmath>

#include "common/parallel.hpp"
#include "common/robust.hpp"
#include "numeric/gemm.hpp"
#include "obs/metrics.hpp"

namespace pgsi {

namespace {

// Panel width of the blocked right-looking factorization and substitution.
// Big enough that the trailing GEMM update dominates, small enough that the
// serial panel factorization stays a few percent of the work.
constexpr std::size_t kBlock = 64;
// RHS-column grain for parallel substitution.
constexpr std::size_t kRhsGrain = 64;

} // namespace

template <class T>
Lu<T>::Lu(Matrix<T> a) : lu_(std::move(a)) {
    PGSI_REQUIRE(lu_.square(), "LU requires a square matrix");
    if (robust::FaultInjector::should_fire("lu.pivot"))
        throw NumericalError(
            "LU: matrix is singular (injected zero pivot, fault site lu.pivot)");
    const std::size_t n = lu_.rows();
    {
        static obs::Counter& factorizations = obs::counter("lu.factorizations");
        static obs::Histogram& sizes = obs::histogram("lu.n");
        ++factorizations;
        sizes.record(static_cast<double>(n));
    }
    // ‖A‖₁ (max absolute column sum), recorded before the in-place
    // factorization destroys A — condition_estimate() needs it.
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0;
        for (std::size_t i = 0; i < n; ++i) s += std::abs(lu_(i, j));
        anorm1_ = std::max(anorm1_, s);
    }
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    // Blocked right-looking factorization: eliminate a kBlock-wide panel with
    // the classic scalar algorithm (restricted to the panel columns), then
    // push the update into the trailing matrix as one triangular solve plus
    // one GEMM — which is where the pool parallelism and cache blocking live.
    for (std::size_t k0 = 0; k0 < n; k0 += kBlock) {
        const std::size_t kend = std::min(k0 + kBlock, n);
        for (std::size_t k = k0; k < kend; ++k) {
            // Partial pivot: largest magnitude in column k at or below the
            // diagonal.
            std::size_t p = k;
            double best = std::abs(lu_(k, k));
            for (std::size_t i = k + 1; i < n; ++i) {
                const double v = std::abs(lu_(i, k));
                if (v > best) {
                    best = v;
                    p = i;
                }
            }
            if (best == 0.0)
                throw NumericalError("LU: matrix is singular (zero pivot column " +
                                     std::to_string(k) + ")");
            if (p != k) {
                for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
                std::swap(perm_[k], perm_[p]);
                sign_ = -sign_;
            }
            const T pivot = lu_(k, k);
            for (std::size_t i = k + 1; i < n; ++i) {
                const T m = lu_(i, k) / pivot;
                lu_(i, k) = m;
                if (m == T{}) continue;
                const T* urow = lu_.row(k);
                T* irow = lu_.row(i);
                for (std::size_t j = k + 1; j < kend; ++j) irow[j] -= m * urow[j];
            }
        }
        if (kend == n) break;
        // U12 = L11^{-1} A12: forward-substitute the unit-lower panel block
        // through the columns right of the panel, parallel over column chunks.
        par::parallel_for_chunked(
            n - kend, kRhsGrain, [&](std::size_t j0, std::size_t j1) {
                const std::size_t c0 = kend + j0, nc = j1 - j0;
                for (std::size_t i = k0 + 1; i < kend; ++i) {
                    T* irow = lu_.row(i) + c0;
                    for (std::size_t t = k0; t < i; ++t) {
                        const T lit = lu_(i, t);
                        if (lit == T{}) continue;
                        const T* trow = lu_.row(t) + c0;
                        for (std::size_t j = 0; j < nc; ++j)
                            irow[j] -= lit * trow[j];
                    }
                }
            });
        // A22 -= L21 * U12 (the O(n^3) bulk of the factorization).
        detail::gemm_update(T{-1}, lu_.row(kend) + k0, n, lu_.row(k0) + kend, n,
                            lu_.row(kend) + kend, n, n - kend, kend - k0,
                            n - kend);
    }
}

template <class T>
std::vector<T> Lu<T>::solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    PGSI_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
    static obs::Counter& solves = obs::counter("lu.solves");
    static obs::Counter& rhs_cols = obs::counter("lu.rhs_cols");
    ++solves;
    ++rhs_cols;
    std::vector<T> x(n);
    // Apply permutation and forward-substitute L y = P b.
    for (std::size_t i = 0; i < n; ++i) {
        T acc = b[perm_[i]];
        const T* row = lu_.row(i);
        for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
        x[i] = acc;
    }
    // Back-substitute U x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = x[ii];
        const T* row = lu_.row(ii);
        for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
        x[ii] = acc / row[ii];
    }
    return x;
}

template <class T>
Matrix<T> Lu<T>::solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    const std::size_t nrhs = b.cols();
    PGSI_REQUIRE(b.rows() == n, "LU solve: rhs row count mismatch");
    static obs::Counter& solves = obs::counter("lu.solves");
    static obs::Counter& rhs_cols = obs::counter("lu.rhs_cols");
    ++solves;
    rhs_cols.add(nrhs);
    if (nrhs == 0) return Matrix<T>(n, 0);
    // All right-hand sides substitute together: one pass over the factors
    // serves every column (the old per-column loop re-streamed the n^2
    // factor data nrhs times).
    Matrix<T> x(n, nrhs);
    par::parallel_for_chunked(n, kRhsGrain, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            const T* src = b.row(perm_[i]);
            T* dst = x.row(i);
            for (std::size_t j = 0; j < nrhs; ++j) dst[j] = src[j];
        }
    });
    // Forward-substitute L (unit lower) blockwise: solve the diagonal block
    // over all RHS columns (parallel over column chunks), then clear the
    // block's contribution to the rows below with one GEMM.
    for (std::size_t k0 = 0; k0 < n; k0 += kBlock) {
        const std::size_t kend = std::min(k0 + kBlock, n);
        par::parallel_for_chunked(
            nrhs, kRhsGrain, [&](std::size_t j0, std::size_t j1) {
                const std::size_t nc = j1 - j0;
                for (std::size_t i = k0 + 1; i < kend; ++i) {
                    T* xi = x.row(i) + j0;
                    for (std::size_t t = k0; t < i; ++t) {
                        const T lit = lu_(i, t);
                        if (lit == T{}) continue;
                        const T* xt = x.row(t) + j0;
                        for (std::size_t j = 0; j < nc; ++j) xi[j] -= lit * xt[j];
                    }
                }
            });
        if (kend < n)
            detail::gemm_update(T{-1}, lu_.row(kend) + k0, n, x.row(k0), nrhs,
                                x.row(kend), nrhs, n - kend, kend - k0, nrhs);
    }
    // Back-substitute U blockwise from the bottom: solve the diagonal block
    // (with division), then subtract its contribution from the rows above.
    for (std::size_t kend = n; kend > 0;) {
        const std::size_t k0 = kend > kBlock ? kend - kBlock : 0;
        par::parallel_for_chunked(
            nrhs, kRhsGrain, [&](std::size_t j0, std::size_t j1) {
                const std::size_t nc = j1 - j0;
                for (std::size_t ii = kend; ii-- > k0;) {
                    T* xi = x.row(ii) + j0;
                    for (std::size_t t = ii + 1; t < kend; ++t) {
                        const T uit = lu_(ii, t);
                        if (uit == T{}) continue;
                        const T* xt = x.row(t) + j0;
                        for (std::size_t j = 0; j < nc; ++j) xi[j] -= uit * xt[j];
                    }
                    const T diag = lu_(ii, ii);
                    for (std::size_t j = 0; j < nc; ++j) xi[j] = xi[j] / diag;
                }
            });
        if (k0 > 0)
            detail::gemm_update(T{-1}, lu_.row(0) + k0, n, x.row(k0), nrhs,
                                x.row(0), nrhs, k0, kend - k0, nrhs);
        kend = k0;
    }
    return x;
}

template <class T>
Matrix<T> Lu<T>::inverse() const {
    return solve(Matrix<T>::identity(lu_.rows()));
}

namespace {

inline double conj_helper(double v) { return v; }
inline Complex conj_helper(const Complex& v) { return std::conj(v); }
inline double real_part(double v) { return v; }
inline double real_part(const Complex& v) { return v.real(); }

} // namespace

template <class T>
std::vector<T> Lu<T>::solve_adjoint(const std::vector<T>& b) const {
    // A = Pᵀ L U, so Aᴴ x = b is solved as Uᴴ w = b (lower triangular),
    // Lᴴ z = w (unit upper triangular), x = Pᵀ z (scatter through perm_).
    const std::size_t n = lu_.rows();
    PGSI_REQUIRE(b.size() == n, "LU solve_adjoint: rhs size mismatch");
    std::vector<T> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        T acc = b[i];
        for (std::size_t j = 0; j < i; ++j) acc -= conj_helper(lu_(j, i)) * z[j];
        z[i] = acc / conj_helper(lu_(i, i));
    }
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = z[ii];
        for (std::size_t j = ii + 1; j < n; ++j)
            acc -= conj_helper(lu_(j, ii)) * z[j];
        z[ii] = acc;
    }
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
    return x;
}

template <class T>
double Lu<T>::condition_estimate() const {
    // Hager's 1-norm estimator for B = A⁻¹ (Higham's complex variant):
    // alternate B x and Bᴴ ξ applications, following the unit vector where
    // the gradient of ‖Bx‖₁ is largest. A handful of O(n²) solves.
    const std::size_t n = lu_.rows();
    if (n == 0) return 0;
    std::vector<T> x(n, T{1.0 / static_cast<double>(n)});
    double est = 0;
    std::size_t last_j = n; // unit-vector index tried last
    for (int iter = 0; iter < 5; ++iter) {
        const std::vector<T> y = solve(x);
        double ynorm = 0;
        for (const T& v : y) ynorm += std::abs(v);
        est = std::max(est, ynorm);
        std::vector<T> xi(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double m = std::abs(y[i]);
            xi[i] = m == 0 ? T{1} : y[i] / T{m};
        }
        const std::vector<T> zv = solve_adjoint(xi);
        std::size_t j = 0;
        double zmax = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const double m = std::abs(zv[i]);
            if (m > zmax) {
                zmax = m;
                j = i;
            }
        }
        if (j == last_j) break;
        double zx = 0;
        for (std::size_t i = 0; i < n; ++i)
            zx += real_part(conj_helper(zv[i]) * x[i]);
        if (zmax <= zx) break; // gradient is not improving: converged
        x.assign(n, T{});
        x[j] = T{1};
        last_j = j;
    }
    return anorm1_ * est;
}

template <class T>
T Lu<T>::determinant() const {
    T d = static_cast<T>(sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

template class Lu<double>;
template class Lu<Complex>;

} // namespace pgsi
