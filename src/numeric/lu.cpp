#include "numeric/lu.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace pgsi {

template <class T>
Lu<T>::Lu(Matrix<T> a) : lu_(std::move(a)) {
    PGSI_REQUIRE(lu_.square(), "LU requires a square matrix");
    const std::size_t n = lu_.rows();
    {
        static obs::Counter& factorizations = obs::counter("lu.factorizations");
        static obs::Histogram& sizes = obs::histogram("lu.n");
        ++factorizations;
        sizes.record(static_cast<double>(n));
    }
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at or below the diagonal.
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best == 0.0)
            throw NumericalError("LU: matrix is singular (zero pivot column " +
                                 std::to_string(k) + ")");
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
            std::swap(perm_[k], perm_[p]);
            sign_ = -sign_;
        }
        const T pivot = lu_(k, k);
        for (std::size_t i = k + 1; i < n; ++i) {
            const T m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == T{}) continue;
            const T* urow = lu_.row(k);
            T* irow = lu_.row(i);
            for (std::size_t j = k + 1; j < n; ++j) irow[j] -= m * urow[j];
        }
    }
}

template <class T>
std::vector<T> Lu<T>::solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    PGSI_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
    static obs::Counter& solves = obs::counter("lu.solves");
    ++solves;
    std::vector<T> x(n);
    // Apply permutation and forward-substitute L y = P b.
    for (std::size_t i = 0; i < n; ++i) {
        T acc = b[perm_[i]];
        const T* row = lu_.row(i);
        for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
        x[i] = acc;
    }
    // Back-substitute U x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = x[ii];
        const T* row = lu_.row(ii);
        for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
        x[ii] = acc / row[ii];
    }
    return x;
}

template <class T>
Matrix<T> Lu<T>::solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    PGSI_REQUIRE(b.rows() == n, "LU solve: rhs row count mismatch");
    Matrix<T> x(n, b.cols());
    std::vector<T> col(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t i = 0; i < n; ++i) col[i] = b(i, c);
        const std::vector<T> sol = solve(col);
        for (std::size_t i = 0; i < n; ++i) x(i, c) = sol[i];
    }
    return x;
}

template <class T>
Matrix<T> Lu<T>::inverse() const {
    return solve(Matrix<T>::identity(lu_.rows()));
}

template <class T>
T Lu<T>::determinant() const {
    T d = static_cast<T>(sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

template class Lu<double>;
template class Lu<Complex>;

} // namespace pgsi
