// Restarted GMRES(m) for dense or matrix-free complex linear systems.
//
// The matrix-free BEM solver path needs a Krylov method that only touches
// the operator through y = A x applications: the FFT-accelerated
// block-Toeplitz interaction operators never materialize A. This is the
// standard right-preconditioned restarted GMRES of Saad & Schultz:
//
//   * Arnoldi with modified Gram-Schmidt (serial inner products, so results
//     are bitwise independent of thread count);
//   * complex Givens rotations maintain the QR factorization of the
//     Hessenberg matrix, giving a cheap running residual estimate;
//   * right preconditioning (solve A M^{-1} u = b, x = M^{-1} u) keeps the
//     monitored residual equal to the true residual of the original system;
//   * on convergence the true residual is recomputed from x — the Givens
//     estimate can drift below what the arithmetic actually achieved.
#pragma once

#include <functional>

#include "numeric/matrix.hpp"

namespace pgsi {

/// A linear operator y = A x on complex vectors (y is pre-sized to x.size()).
using LinearOpC = std::function<void(const VectorC& x, VectorC& y)>;

struct GmresOptions {
    std::size_t restart = 120;         ///< Krylov dimension per cycle
    std::size_t max_iterations = 4000; ///< total inner-iteration budget
    double tol = 1e-11;                ///< target relative residual |b-Ax|/|b|
};

struct GmresResult {
    bool converged = false;
    std::size_t iterations = 0; ///< inner (Arnoldi) iterations performed
    std::size_t restarts = 0;   ///< restart cycles completed
    std::size_t matvecs = 0;    ///< operator applications
    /// Times the Givens estimate claimed convergence but the recomputed true
    /// residual disagreed; the solve keeps iterating (with a tightened
    /// estimate target) instead of giving up, within the iteration budget.
    std::size_t estimate_retries = 0;
    double residual = 0;        ///< final true relative residual
};

/// Solve A x = b. `x` carries the initial guess on entry (pass a zero vector
/// of size b.size() for a cold start) and the solution on return. An
/// identically-zero initial guess skips the initial operator application:
/// there r = b and the relative residual is exactly 1, so a cold start costs
/// no matvec until the first Arnoldi step.
/// `precond`, when non-null, applies z = M^{-1} v (right preconditioning);
/// it must be a fixed linear operator for the duration of the solve.
/// Telemetry lands in the returned struct and in the pgsi::obs counters
/// gmres.solves / gmres.iterations / gmres.matvecs / gmres.restarts.
GmresResult gmres(const LinearOpC& a, const VectorC& b, VectorC& x,
                  const GmresOptions& opt = {},
                  const LinearOpC& precond = nullptr);

/// Telemetry of one block (multi-RHS) GMRES solve.
struct BlockGmresResult {
    bool converged = false;      ///< every column reached opt.tol
    std::size_t iterations = 0;  ///< Arnoldi steps summed over all cycles
    std::size_t matvecs = 0;     ///< operator applications (shared basis +
                                 ///< per-column true-residual verifications)
    std::size_t cycles = 0;      ///< seed cycles (block analogue of restarts)
    std::size_t deflated = 0;    ///< columns retired before the last cycle
    /// Cycles where a column's shared-basis estimate claimed convergence but
    /// the recomputed true residual disagreed; the column stays active with
    /// a tightened per-column estimate target.
    std::size_t estimate_retries = 0;
    std::vector<double> residuals; ///< final true relative residual per column
    double worst_residual = 0;     ///< max over `residuals`
};

/// Solve A X = B for several right-hand sides against one shared Arnoldi
/// basis (the sweep engine's per-frequency block solve). Each cycle seeds
/// the basis with the worst column's residual; every other active column's
/// least-squares problem rides the same basis and the same Givens rotations,
/// so its residual estimate costs one inner product per Arnoldi step instead
/// of its own operator applications. Columns whose verified true residual
/// reaches opt.tol are deflated (dropped from later cycles). Correlated
/// right-hand sides — port columns of one operator, warm-started residuals
/// of adjacent frequency points — converge in far fewer total matvecs than
/// column-by-column solves; worst case (orthogonal residuals) degrades to
/// roughly the per-column cost plus the cheap projection dots.
///
/// `x` carries the per-column initial guesses (identically-zero guesses skip
/// the initial residual matvec, as in gmres()) and the solutions on return.
/// All inner products are serial, so results are bitwise independent of the
/// thread count. Counters: gmres.block_solves plus the shared
/// gmres.iterations / gmres.matvecs / gmres.restarts.
BlockGmresResult block_gmres(const LinearOpC& a, const std::vector<VectorC>& b,
                             std::vector<VectorC>& x,
                             const GmresOptions& opt = {},
                             const LinearOpC& precond = nullptr);

} // namespace pgsi
