#include "numeric/gmres.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"

namespace pgsi {

namespace {

// Conjugated inner product <a, b> = sum conj(a_i) b_i, serial for
// thread-count-invariant results.
Complex cdot(const VectorC& a, const VectorC& b) {
    Complex s{};
    for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
    return s;
}

} // namespace

GmresResult gmres(const LinearOpC& a, const VectorC& b, VectorC& x,
                  const GmresOptions& opt, const LinearOpC& precond) {
    PGSI_REQUIRE(static_cast<bool>(a), "gmres: null operator");
    PGSI_REQUIRE(x.size() == b.size(), "gmres: x/b size mismatch");
    PGSI_REQUIRE(opt.restart >= 1, "gmres: restart must be >= 1");
    PGSI_REQUIRE(opt.tol > 0, "gmres: tol must be positive");
    static obs::Counter& c_solves = obs::counter("gmres.solves");
    static obs::Counter& c_iters = obs::counter("gmres.iterations");
    static obs::Counter& c_matvecs = obs::counter("gmres.matvecs");
    static obs::Counter& c_restarts = obs::counter("gmres.restarts");
    static obs::Counter& c_est_retries =
        obs::counter("gmres.estimate_retries");
    static obs::Histogram& h_iters = obs::histogram("gmres.iterations_per_solve");
    ++c_solves;

    GmresResult res;
    const std::size_t n = b.size();
    if (robust::FaultInjector::should_fire("gmres.stall")) {
        // Injected stall: report total non-convergence without touching x,
        // exactly as a solve that made no progress would.
        res.converged = false;
        res.residual = 1.0;
        return res;
    }
    const double bnorm = norm2(b);
    if (bnorm == 0.0) {
        x.assign(n, Complex{});
        res.converged = true;
        return res;
    }
    const std::size_t m = opt.restart;

    VectorC w(n), z(n), r(n);
    std::vector<VectorC> v;            // Arnoldi basis, up to m+1 vectors
    std::vector<VectorC> h(m + 1, VectorC(m)); // Hessenberg, h[i][j]
    VectorC g(m + 1);                  // rotated rhs of the least squares
    VectorC cs(m);                     // Givens cosines (real, stored complex)
    VectorC sn(m);                     // Givens sines

    // x += M^{-1} (V y) for the current least-squares solution y of size k.
    auto update_x = [&](std::size_t k) {
        VectorC y(k);
        for (std::size_t i = k; i-- > 0;) {
            Complex acc = g[i];
            for (std::size_t j = i + 1; j < k; ++j) acc -= h[i][j] * y[j];
            y[i] = acc / h[i][i];
        }
        VectorC dx(n, Complex{});
        for (std::size_t j = 0; j < k; ++j) {
            const Complex yj = y[j];
            const VectorC& vj = v[j];
            for (std::size_t i = 0; i < n; ++i) dx[i] += yj * vj[i];
        }
        if (precond) {
            precond(dx, z);
            for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
        } else {
            for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
        }
    };
    // True relative residual at the current x.
    auto true_residual = [&]() {
        a(x, w);
        ++res.matvecs;
        for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
        return norm2(r) / bnorm;
    };

    // Convergence stream: the running Givens residual estimate per inner
    // iteration plus restart / estimate-retry marks. `sid` is kStreamNone
    // when recording is off, making each append site a single compare;
    // the recorder only ever reads solver state, so results are bitwise
    // identical either way.
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("gmres.residual")
                                : obs::kStreamNone;

    res.residual = true_residual();
    if (sid != obs::kStreamNone) obs::stream_append(sid, 0.0, res.residual);
    while (res.residual > opt.tol && res.iterations < opt.max_iterations) {
        // r holds b - A x from the residual evaluation above.
        const double beta = norm2(r);
        if (beta == 0.0) break;
        v.assign(1, r);
        for (std::size_t i = 0; i < n; ++i) v[0][i] /= beta;
        g.assign(m + 1, Complex{});
        g[0] = beta;

        // Target for the running Givens estimate. Starts at the requested
        // tolerance; when the estimate claims convergence but the recomputed
        // true residual disagrees (loss of orthogonality on ill-conditioned
        // operators lets the estimate drift below what the arithmetic
        // achieved), the target is tightened by the observed gap and the
        // cycle keeps iterating instead of giving up.
        double est_tol = opt.tol;
        std::size_t k = 0;       // columns accumulated this cycle
        bool breakdown = false;  // column vanished (denom == 0)
        bool committed = false;  // x and res.residual already updated
        while (k < m && res.iterations < opt.max_iterations) {
            const std::size_t j = k;
            if (precond) {
                precond(v[j], z);
                a(z, w);
            } else {
                a(v[j], w);
            }
            ++res.matvecs;
            ++res.iterations;
            // Modified Gram-Schmidt.
            for (std::size_t i = 0; i <= j; ++i) {
                const Complex hij = cdot(v[i], w);
                h[i][j] = hij;
                const VectorC& vi = v[i];
                for (std::size_t t = 0; t < n; ++t) w[t] -= hij * vi[t];
            }
            const double hnext = norm2(w);
            // Apply the accumulated Givens rotations to the new column.
            for (std::size_t i = 0; i < j; ++i) {
                const Complex t0 = h[i][j];
                const Complex t1 = h[i + 1][j];
                h[i][j] = cs[i] * t0 + sn[i] * t1;
                h[i + 1][j] = -std::conj(sn[i]) * t0 + cs[i] * t1;
            }
            // New rotation eliminating h[j+1][j] (= hnext, real >= 0).
            {
                const Complex hjj = h[j][j];
                const double denom =
                    std::sqrt(std::norm(hjj) + hnext * hnext);
                if (denom == 0.0) {
                    breakdown = true; // entire column vanished
                    break;
                }
                if (std::abs(hjj) == 0.0) {
                    cs[j] = 0.0;
                    sn[j] = 1.0;
                } else {
                    cs[j] = std::abs(hjj) / denom;
                    sn[j] = (hjj / std::abs(hjj)) * (hnext / denom);
                }
                h[j][j] = cs[j] * hjj + sn[j] * hnext;
                g[j + 1] = -std::conj(sn[j]) * g[j];
                g[j] = cs[j] * g[j];
            }
            k = j + 1;
            if (sid != obs::kStreamNone)
                obs::stream_append(sid, static_cast<double>(res.iterations),
                                   std::abs(g[k]) / bnorm);
            if (hnext > 0.0 && std::abs(g[k]) / bnorm > est_tol) {
                v.push_back(w);
                VectorC& vn = v.back();
                for (std::size_t t = 0; t < n; ++t) vn[t] /= hnext;
                continue;
            }
            if (hnext == 0.0) break; // happy breakdown: commit below
            // The Givens estimate claims convergence. Verify against the
            // true residual before committing; push the next Arnoldi vector
            // first, because true_residual() reuses w as scratch and the
            // vector is needed anyway if the cycle continues.
            {
                v.push_back(w);
                VectorC& vn = v.back();
                for (std::size_t t = 0; t < n; ++t) vn[t] /= hnext;
            }
            const VectorC x_save = x;
            update_x(k);
            const double tr = true_residual();
            if (tr <= opt.tol || k >= m ||
                res.iterations >= opt.max_iterations) {
                // Truly converged, or no room left this cycle / in the
                // budget: keep the update and let the outer loop decide.
                res.residual = tr;
                committed = true;
                break;
            }
            // The estimate drifted below the achieved residual: discard the
            // trial update, tighten the estimate target by the observed gap,
            // and keep building this Krylov cycle.
            ++res.estimate_retries;
            if (sid != obs::kStreamNone)
                obs::stream_mark(sid, static_cast<double>(res.iterations),
                                 "estimate_retry");
            x = x_save;
            est_tol = std::min(est_tol,
                               opt.tol * ((std::abs(g[k]) / bnorm) / tr));
        }
        if (!committed) {
            if (k > 0) update_x(k);
            res.residual = true_residual();
        }
        ++res.restarts;
        if (sid != obs::kStreamNone && res.residual > opt.tol &&
            res.iterations < opt.max_iterations && !breakdown)
            obs::stream_mark(sid, static_cast<double>(res.iterations),
                             "restart");
        if (breakdown) break;
    }
    res.converged = res.residual <= opt.tol;
    if (sid != obs::kStreamNone)
        obs::stream_append(sid, static_cast<double>(res.iterations),
                           res.residual);
    c_iters.add(res.iterations);
    c_matvecs.add(res.matvecs);
    c_restarts.add(res.restarts);
    c_est_retries.add(res.estimate_retries);
    h_iters.record(static_cast<double>(res.iterations));
    return res;
}

} // namespace pgsi
