#include "numeric/gmres.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"

namespace pgsi {

namespace {

// Conjugated inner product <a, b> = sum conj(a_i) b_i, serial for
// thread-count-invariant results.
Complex cdot(const VectorC& a, const VectorC& b) {
    Complex s{};
    for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
    return s;
}

} // namespace

GmresResult gmres(const LinearOpC& a, const VectorC& b, VectorC& x,
                  const GmresOptions& opt, const LinearOpC& precond) {
    PGSI_REQUIRE(static_cast<bool>(a), "gmres: null operator");
    PGSI_REQUIRE(x.size() == b.size(), "gmres: x/b size mismatch");
    PGSI_REQUIRE(opt.restart >= 1, "gmres: restart must be >= 1");
    PGSI_REQUIRE(opt.tol > 0, "gmres: tol must be positive");
    static obs::Counter& c_solves = obs::counter("gmres.solves");
    static obs::Counter& c_iters = obs::counter("gmres.iterations");
    static obs::Counter& c_matvecs = obs::counter("gmres.matvecs");
    static obs::Counter& c_restarts = obs::counter("gmres.restarts");
    static obs::Counter& c_est_retries =
        obs::counter("gmres.estimate_retries");
    static obs::Histogram& h_iters = obs::histogram("gmres.iterations_per_solve");
    ++c_solves;

    GmresResult res;
    const std::size_t n = b.size();
    if (robust::FaultInjector::should_fire("gmres.stall")) {
        // Injected stall: report total non-convergence without touching x,
        // exactly as a solve that made no progress would.
        res.converged = false;
        res.residual = 1.0;
        return res;
    }
    const double bnorm = norm2(b);
    if (bnorm == 0.0) {
        x.assign(n, Complex{});
        res.converged = true;
        return res;
    }
    const std::size_t m = opt.restart;

    VectorC w(n), z(n), r(n);
    std::vector<VectorC> v;            // Arnoldi basis, up to m+1 vectors
    std::vector<VectorC> h(m + 1, VectorC(m)); // Hessenberg, h[i][j]
    VectorC g(m + 1);                  // rotated rhs of the least squares
    VectorC cs(m);                     // Givens cosines (real, stored complex)
    VectorC sn(m);                     // Givens sines

    // x += M^{-1} (V y) for the current least-squares solution y of size k.
    auto update_x = [&](std::size_t k) {
        VectorC y(k);
        for (std::size_t i = k; i-- > 0;) {
            Complex acc = g[i];
            for (std::size_t j = i + 1; j < k; ++j) acc -= h[i][j] * y[j];
            y[i] = acc / h[i][i];
        }
        VectorC dx(n, Complex{});
        for (std::size_t j = 0; j < k; ++j) {
            const Complex yj = y[j];
            const VectorC& vj = v[j];
            for (std::size_t i = 0; i < n; ++i) dx[i] += yj * vj[i];
        }
        if (precond) {
            precond(dx, z);
            for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
        } else {
            for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
        }
    };
    // True relative residual at the current x.
    auto true_residual = [&]() {
        a(x, w);
        ++res.matvecs;
        for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
        return norm2(r) / bnorm;
    };

    // Convergence stream: the running Givens residual estimate per inner
    // iteration plus restart / estimate-retry marks. `sid` is kStreamNone
    // when recording is off, making each append site a single compare;
    // the recorder only ever reads solver state, so results are bitwise
    // identical either way.
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("gmres.residual")
                                : obs::kStreamNone;

    // An identically-zero initial guess has r = b and relative residual
    // exactly 1 — no operator application needed to know that. Warm-started
    // sweeps make nonzero guesses common, so the matvec is only paid when x
    // actually carries information.
    bool x_is_zero = true;
    for (const Complex& xi : x)
        if (xi != Complex{}) {
            x_is_zero = false;
            break;
        }
    if (x_is_zero) {
        r = b;
        res.residual = 1.0;
    } else {
        res.residual = true_residual();
    }
    if (sid != obs::kStreamNone) obs::stream_append(sid, 0.0, res.residual);
    while (res.residual > opt.tol && res.iterations < opt.max_iterations) {
        // r holds b - A x from the residual evaluation above.
        const double beta = norm2(r);
        if (beta == 0.0) break;
        v.assign(1, r);
        for (std::size_t i = 0; i < n; ++i) v[0][i] /= beta;
        g.assign(m + 1, Complex{});
        g[0] = beta;

        // Target for the running Givens estimate. Starts at the requested
        // tolerance; when the estimate claims convergence but the recomputed
        // true residual disagrees (loss of orthogonality on ill-conditioned
        // operators lets the estimate drift below what the arithmetic
        // achieved), the target is tightened by the observed gap and the
        // cycle keeps iterating instead of giving up.
        double est_tol = opt.tol;
        std::size_t k = 0;       // columns accumulated this cycle
        bool breakdown = false;  // column vanished (denom == 0)
        bool committed = false;  // x and res.residual already updated
        while (k < m && res.iterations < opt.max_iterations) {
            const std::size_t j = k;
            if (precond) {
                precond(v[j], z);
                a(z, w);
            } else {
                a(v[j], w);
            }
            ++res.matvecs;
            ++res.iterations;
            // Modified Gram-Schmidt.
            for (std::size_t i = 0; i <= j; ++i) {
                const Complex hij = cdot(v[i], w);
                h[i][j] = hij;
                const VectorC& vi = v[i];
                for (std::size_t t = 0; t < n; ++t) w[t] -= hij * vi[t];
            }
            const double hnext = norm2(w);
            // Apply the accumulated Givens rotations to the new column.
            for (std::size_t i = 0; i < j; ++i) {
                const Complex t0 = h[i][j];
                const Complex t1 = h[i + 1][j];
                h[i][j] = cs[i] * t0 + sn[i] * t1;
                h[i + 1][j] = -std::conj(sn[i]) * t0 + cs[i] * t1;
            }
            // New rotation eliminating h[j+1][j] (= hnext, real >= 0).
            {
                const Complex hjj = h[j][j];
                const double denom =
                    std::sqrt(std::norm(hjj) + hnext * hnext);
                if (denom == 0.0) {
                    breakdown = true; // entire column vanished
                    break;
                }
                if (std::abs(hjj) == 0.0) {
                    cs[j] = 0.0;
                    sn[j] = 1.0;
                } else {
                    cs[j] = std::abs(hjj) / denom;
                    sn[j] = (hjj / std::abs(hjj)) * (hnext / denom);
                }
                h[j][j] = cs[j] * hjj + sn[j] * hnext;
                g[j + 1] = -std::conj(sn[j]) * g[j];
                g[j] = cs[j] * g[j];
            }
            k = j + 1;
            if (sid != obs::kStreamNone)
                obs::stream_append(sid, static_cast<double>(res.iterations),
                                   std::abs(g[k]) / bnorm);
            if (hnext > 0.0 && std::abs(g[k]) / bnorm > est_tol) {
                v.push_back(w);
                VectorC& vn = v.back();
                for (std::size_t t = 0; t < n; ++t) vn[t] /= hnext;
                continue;
            }
            if (hnext == 0.0) break; // happy breakdown: commit below
            // The Givens estimate claims convergence. Verify against the
            // true residual before committing; push the next Arnoldi vector
            // first, because true_residual() reuses w as scratch and the
            // vector is needed anyway if the cycle continues.
            {
                v.push_back(w);
                VectorC& vn = v.back();
                for (std::size_t t = 0; t < n; ++t) vn[t] /= hnext;
            }
            const VectorC x_save = x;
            update_x(k);
            const double tr = true_residual();
            if (tr <= opt.tol || k >= m ||
                res.iterations >= opt.max_iterations) {
                // Truly converged, or no room left this cycle / in the
                // budget: keep the update and let the outer loop decide.
                res.residual = tr;
                committed = true;
                break;
            }
            // The estimate drifted below the achieved residual: discard the
            // trial update, tighten the estimate target by the observed gap,
            // and keep building this Krylov cycle.
            ++res.estimate_retries;
            if (sid != obs::kStreamNone)
                obs::stream_mark(sid, static_cast<double>(res.iterations),
                                 "estimate_retry");
            x = x_save;
            est_tol = std::min(est_tol,
                               opt.tol * ((std::abs(g[k]) / bnorm) / tr));
        }
        if (!committed) {
            if (k > 0) update_x(k);
            res.residual = true_residual();
        }
        ++res.restarts;
        if (sid != obs::kStreamNone && res.residual > opt.tol &&
            res.iterations < opt.max_iterations && !breakdown)
            obs::stream_mark(sid, static_cast<double>(res.iterations),
                             "restart");
        if (breakdown) break;
    }
    res.converged = res.residual <= opt.tol;
    if (sid != obs::kStreamNone)
        obs::stream_append(sid, static_cast<double>(res.iterations),
                           res.residual);
    c_iters.add(res.iterations);
    c_matvecs.add(res.matvecs);
    c_restarts.add(res.restarts);
    c_est_retries.add(res.estimate_retries);
    h_iters.record(static_cast<double>(res.iterations));
    return res;
}

BlockGmresResult block_gmres(const LinearOpC& a, const std::vector<VectorC>& b,
                             std::vector<VectorC>& x, const GmresOptions& opt,
                             const LinearOpC& precond) {
    PGSI_REQUIRE(static_cast<bool>(a), "block_gmres: null operator");
    PGSI_REQUIRE(!b.empty(), "block_gmres: no right-hand sides");
    PGSI_REQUIRE(x.size() == b.size(), "block_gmres: x/b column count mismatch");
    const std::size_t n = b[0].size();
    for (std::size_t i = 0; i < b.size(); ++i) {
        PGSI_REQUIRE(b[i].size() == n, "block_gmres: ragged rhs columns");
        PGSI_REQUIRE(x[i].size() == n, "block_gmres: x/b size mismatch");
    }
    PGSI_REQUIRE(opt.restart >= 1, "block_gmres: restart must be >= 1");
    PGSI_REQUIRE(opt.tol > 0, "block_gmres: tol must be positive");
    static obs::Counter& c_block = obs::counter("gmres.block_solves");
    static obs::Counter& c_iters = obs::counter("gmres.iterations");
    static obs::Counter& c_matvecs = obs::counter("gmres.matvecs");
    static obs::Counter& c_restarts = obs::counter("gmres.restarts");
    static obs::Counter& c_est_retries =
        obs::counter("gmres.estimate_retries");
    static obs::Counter& c_deflations = obs::counter("gmres.deflations");
    ++c_block;

    const std::size_t p = b.size();
    BlockGmresResult res;
    res.residuals.assign(p, 1.0);
    if (robust::FaultInjector::should_fire("gmres.stall")) {
        // Injected stall: total non-convergence, x untouched — same contract
        // as the single-column path.
        res.worst_residual = 1.0;
        return res;
    }
    const std::size_t m = opt.restart;

    std::vector<double> bnorm(p);
    std::vector<VectorC> r(p);          // current residual per column
    std::vector<double> relres(p, 1.0); // |r_i| / |b_i|, refreshed each cycle
    std::vector<double> est_tol(p, opt.tol); // per-column estimate target
    std::vector<bool> done(p, false);
    VectorC w(n), z(n);

    for (std::size_t i = 0; i < p; ++i) {
        bnorm[i] = norm2(b[i]);
        if (bnorm[i] == 0.0) {
            x[i].assign(n, Complex{});
            r[i].assign(n, Complex{});
            relres[i] = 0.0;
            res.residuals[i] = 0.0;
            done[i] = true;
            continue;
        }
        bool x_is_zero = true;
        for (const Complex& xi : x[i])
            if (xi != Complex{}) {
                x_is_zero = false;
                break;
            }
        if (x_is_zero) {
            r[i] = b[i];
            relres[i] = 1.0;
        } else {
            a(x[i], w);
            ++res.matvecs;
            r[i].resize(n);
            for (std::size_t t = 0; t < n; ++t) r[i][t] = b[i][t] - w[t];
            relres[i] = norm2(r[i]) / bnorm[i];
        }
        res.residuals[i] = relres[i];
        if (relres[i] <= opt.tol) done[i] = true;
    }

    std::vector<VectorC> v;                    // shared Arnoldi basis
    std::vector<VectorC> h(m + 1, VectorC(m)); // rotated Hessenberg
    VectorC g(m + 1);                          // seed's rotated rhs
    VectorC cs(m), sn(m);                      // Givens rotations

    // x[col] += M^{-1} (V y) where y solves the k x k triangular system
    // R y = coef[0..k-1] against the shared rotated Hessenberg.
    auto commit_column = [&](std::size_t col, const VectorC& coef,
                             std::size_t k) {
        VectorC y(k);
        for (std::size_t i = k; i-- > 0;) {
            Complex acc = coef[i];
            for (std::size_t j = i + 1; j < k; ++j) acc -= h[i][j] * y[j];
            y[i] = acc / h[i][i];
        }
        VectorC dx(n, Complex{});
        for (std::size_t j = 0; j < k; ++j) {
            const Complex yj = y[j];
            const VectorC& vj = v[j];
            for (std::size_t i = 0; i < n; ++i) dx[i] += yj * vj[i];
        }
        VectorC& xc = x[col];
        if (precond) {
            precond(dx, z);
            for (std::size_t i = 0; i < n; ++i) xc[i] += z[i];
        } else {
            for (std::size_t i = 0; i < n; ++i) xc[i] += dx[i];
        }
    };

    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("gmres.block.residual")
                                : obs::kStreamNone;

    auto any_active = [&]() {
        for (std::size_t i = 0; i < p; ++i)
            if (!done[i]) return true;
        return false;
    };

    double prev_worst = std::numeric_limits<double>::infinity();
    std::size_t stalled_cycles = 0;
    bool breakdown = false;
    while (any_active() && !breakdown &&
           res.iterations < opt.max_iterations) {
        // Seed the shared basis with the worst active column's residual; the
        // other active columns' least-squares problems ride the same basis
        // through one extra inner product per Arnoldi step.
        std::size_t seed = p;
        for (std::size_t i = 0; i < p; ++i)
            if (!done[i] && (seed == p || relres[i] > relres[seed])) seed = i;
        const double beta = norm2(r[seed]);
        if (beta == 0.0) break; // exact x with nonzero reported relres: stop
        ++res.cycles;
        if (sid != obs::kStreamNone)
            obs::stream_mark(sid, static_cast<double>(res.iterations),
                             "cycle");
        v.assign(1, r[seed]);
        for (std::size_t i = 0; i < n; ++i) v[0][i] /= beta;
        g.assign(m + 1, Complex{});
        g[0] = beta;

        // Per non-seed active column: chat holds the rotated projection
        // coefficients of r_i onto the basis (Q_k <V, r_i>), sumsq the raw
        // |<v_t, r_i>|^2 total. The in-basis least-squares residual estimate
        // is then sqrt(orth^2 + |tail|^2) with orth^2 = |r_i|^2 - sumsq, the
        // part of r_i the seed's Krylov space has not captured (yet).
        std::vector<VectorC> chat(p);
        std::vector<double> sumsq(p, 0.0);
        std::vector<bool> riding(p, false);
        for (std::size_t i = 0; i < p; ++i) {
            if (done[i] || i == seed) continue;
            riding[i] = true;
            chat[i].assign(m + 1, Complex{});
            chat[i][0] = cdot(v[0], r[i]);
            sumsq[i] = std::norm(chat[i][0]);
        }
        auto column_estimate = [&](std::size_t i, std::size_t k) {
            if (i == seed) return std::abs(g[k]) / bnorm[i];
            const double rn2 = relres[i] * bnorm[i] * relres[i] * bnorm[i];
            const double orth2 = std::max(0.0, rn2 - sumsq[i]);
            return std::sqrt(orth2 + std::norm(chat[i][k])) / bnorm[i];
        };
        std::size_t k = 0;
        bool basis_exhausted = false;
        while (k < m && res.iterations < opt.max_iterations) {
            const std::size_t j = k;
            if (precond) {
                precond(v[j], z);
                a(z, w);
            } else {
                a(v[j], w);
            }
            ++res.matvecs;
            ++res.iterations;
            double hcol2 = 0.0; // |A M^{-1} v_j|^2, for the exhaustion guard
            for (std::size_t i = 0; i <= j; ++i) {
                const Complex hij = cdot(v[i], w);
                h[i][j] = hij;
                hcol2 += std::norm(hij);
                const VectorC& vi = v[i];
                for (std::size_t t = 0; t < n; ++t) w[t] -= hij * vi[t];
            }
            const double hnext = norm2(w);
            hcol2 += hnext * hnext;
            // Riding columns can hold a cycle open past the point where the
            // Krylov space saturates (hnext a round-off sliver of the column
            // norm); further Arnoldi vectors are noise and would poison the
            // shared triangular factor, so commit what the basis has.
            basis_exhausted = hnext * hnext <= 1e-28 * hcol2;
            for (std::size_t i = 0; i < j; ++i) {
                const Complex t0 = h[i][j];
                const Complex t1 = h[i + 1][j];
                h[i][j] = cs[i] * t0 + sn[i] * t1;
                h[i + 1][j] = -std::conj(sn[i]) * t0 + cs[i] * t1;
            }
            const Complex hjj = h[j][j];
            const double denom = std::sqrt(std::norm(hjj) + hnext * hnext);
            if (denom == 0.0) {
                breakdown = true;
                break;
            }
            if (std::abs(hjj) == 0.0) {
                cs[j] = 0.0;
                sn[j] = 1.0;
            } else {
                cs[j] = std::abs(hjj) / denom;
                sn[j] = (hjj / std::abs(hjj)) * (hnext / denom);
            }
            h[j][j] = cs[j] * hjj + sn[j] * hnext;
            g[j + 1] = -std::conj(sn[j]) * g[j];
            g[j] = cs[j] * g[j];
            k = j + 1;
            if (hnext > 0.0) {
                v.push_back(w);
                VectorC& vn = v.back();
                for (std::size_t t = 0; t < n; ++t) vn[t] /= hnext;
                // Fold the new basis vector into every riding column:
                // one raw inner product, then rotation j on the
                // (chat[j], raw) pair — the same rotation that just
                // triangularized the seed's Hessenberg column.
                for (std::size_t i = 0; i < p; ++i) {
                    if (!riding[i]) continue;
                    const Complex raw = cdot(v.back(), r[i]);
                    sumsq[i] += std::norm(raw);
                    const Complex t0 = chat[i][j];
                    chat[i][j] = cs[j] * t0 + sn[j] * raw;
                    chat[i][j + 1] = -std::conj(sn[j]) * t0 + cs[j] * raw;
                }
            }
            if (sid != obs::kStreamNone)
                obs::stream_append(sid, static_cast<double>(res.iterations),
                                   column_estimate(seed, k));
            if (hnext == 0.0 || basis_exhausted) break; // commit below
            // The seed alone governs the cycle length. Riding columns must
            // never hold a cycle open past the seed's convergence: modified
            // Gram-Schmidt loses orthogonality at a rate inversely
            // proportional to the seed's residual, so Arnoldi vectors grown
            // beyond that point would feed the riding projections
            // re-acquired components of already-converged directions.
            // Columns the basis could not finish reseed in the next cycle.
            if (column_estimate(seed, k) <= est_tol[seed]) break;
        }
        if (breakdown && k == 0) break;

        // Commit the shared-basis least-squares update for every active
        // column, then refresh each with its true residual — one operator
        // application per column per cycle. The recomputation both verifies
        // convergence before deflating and resets recurrence round-off for
        // the next cycle's projections.
        std::vector<double> claimed(p, 0.0);
        std::vector<VectorC> x_save(p);
        for (std::size_t i = 0; i < p; ++i) {
            if (done[i] || (i != seed && !riding[i])) continue;
            claimed[i] = column_estimate(i, k);
            x_save[i] = x[i];
            commit_column(i, i == seed ? g : chat[i], k);
        }
        double worst_active = 0.0;
        VectorC r_new(n);
        for (std::size_t i = 0; i < p; ++i) {
            if (done[i] || (i != seed && !riding[i])) continue;
            a(x[i], w);
            ++res.matvecs;
            for (std::size_t t = 0; t < n; ++t) r_new[t] = b[i][t] - w[t];
            const double rel_new = norm2(r_new) / bnorm[i];
            if (rel_new > relres[i]) {
                // The shared-basis update made this column worse (round-off
                // on a nearly exhausted basis): discard it. The next cycle
                // reseeds from the intact residual.
                x[i] = x_save[i];
            } else {
                r[i] = r_new;
                relres[i] = rel_new;
            }
            res.residuals[i] = relres[i];
            if (relres[i] <= opt.tol) {
                done[i] = true;
                ++res.deflated;
                ++c_deflations;
                if (sid != obs::kStreamNone)
                    obs::stream_mark(sid,
                                     static_cast<double>(res.iterations),
                                     "deflate");
                continue;
            }
            if (claimed[i] <= est_tol[i]) {
                // The shared-basis estimate claimed convergence the true
                // residual disproves: tighten this column's target by the
                // observed gap so the next cycle works past the drift.
                ++res.estimate_retries;
                ++c_est_retries;
                double gap = claimed[i] / relres[i];
                if (!(gap > 0.0) || gap >= 1.0) gap = 0.1;
                est_tol[i] = std::min(est_tol[i], opt.tol * gap);
                if (sid != obs::kStreamNone)
                    obs::stream_mark(sid,
                                     static_cast<double>(res.iterations),
                                     "estimate_retry");
            }
            worst_active = std::max(worst_active, relres[i]);
        }
        if (worst_active > 0.0) {
            if (worst_active >= prev_worst) {
                if (++stalled_cycles >= 2) break; // no progress: stop burning
            } else {
                stalled_cycles = 0;
            }
            prev_worst = worst_active;
        }
    }

    res.worst_residual = 0.0;
    res.converged = true;
    for (std::size_t i = 0; i < p; ++i) {
        res.worst_residual = std::max(res.worst_residual, res.residuals[i]);
        if (res.residuals[i] > opt.tol) res.converged = false;
    }
    if (sid != obs::kStreamNone)
        obs::stream_append(sid, static_cast<double>(res.iterations),
                           res.worst_residual);
    c_iters.add(res.iterations);
    c_matvecs.add(res.matvecs);
    c_restarts.add(res.cycles);
    return res;
}

} // namespace pgsi
