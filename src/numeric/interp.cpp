#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pgsi {

PiecewiseLinear::PiecewiseLinear(VectorD t, VectorD v)
    : t_(std::move(t)), v_(std::move(v)) {
    PGSI_REQUIRE(t_.size() == v_.size(), "PiecewiseLinear: size mismatch");
    for (std::size_t i = 1; i < t_.size(); ++i)
        PGSI_REQUIRE(t_[i] > t_[i - 1], "PiecewiseLinear: abscissae must increase");
}

double PiecewiseLinear::operator()(double x) const {
    PGSI_REQUIRE(!t_.empty(), "PiecewiseLinear: empty function");
    if (x <= t_.front()) return v_.front();
    if (x >= t_.back()) return v_.back();
    const auto it = std::upper_bound(t_.begin(), t_.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - t_.begin());
    const double f = (x - t_[i - 1]) / (t_[i] - t_[i - 1]);
    return v_[i - 1] + f * (v_[i] - v_[i - 1]);
}

double PiecewiseLinear::slope(double x) const {
    PGSI_REQUIRE(!t_.empty(), "PiecewiseLinear: empty function");
    if (t_.size() < 2 || x <= t_.front() || x >= t_.back()) return 0.0;
    const auto it = std::upper_bound(t_.begin(), t_.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - t_.begin());
    return (v_[i] - v_[i - 1]) / (t_[i] - t_[i - 1]);
}

DelayLine::DelayLine(double dt, double max_delay, double initial_value) : dt_(dt) {
    PGSI_REQUIRE(dt > 0, "DelayLine: dt must be positive");
    PGSI_REQUIRE(max_delay >= 0, "DelayLine: max_delay must be non-negative");
    capacity_ = static_cast<std::size_t>(std::ceil(max_delay / dt)) + 2;
    samples_.assign(capacity_, initial_value);
}

void DelayLine::push(double v) {
    samples_.push_back(v);
    if (samples_.size() > capacity_) samples_.pop_front();
}

double DelayLine::value_before_last(double delay) const {
    PGSI_REQUIRE(delay >= 0, "DelayLine: delay must be non-negative");
    const double steps = delay / dt_;
    const auto k = static_cast<std::size_t>(steps);
    const double frac = steps - static_cast<double>(k);
    const std::size_t last = samples_.size() - 1;
    PGSI_REQUIRE(k + 1 <= last, "DelayLine: delay exceeds capacity");
    const double newer = samples_[last - k];
    const double older = samples_[last - k - 1];
    return newer + frac * (older - newer);
}

} // namespace pgsi
