#include "numeric/cholesky.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace pgsi {

Cholesky::Cholesky(const MatrixD& a) : g_(a.rows(), a.cols()) {
    PGSI_REQUIRE(a.square(), "Cholesky requires a square matrix");
    const std::size_t n = a.rows();
    {
        static obs::Counter& factorizations =
            obs::counter("cholesky.factorizations");
        static obs::Histogram& sizes = obs::histogram("cholesky.n");
        ++factorizations;
        sizes.record(static_cast<double>(n));
    }
    for (std::size_t j = 0; j < n; ++j) {
        double d = a(j, j);
        for (std::size_t k = 0; k < j; ++k) d -= g_(j, k) * g_(j, k);
        if (d <= 0.0)
            throw NumericalError("Cholesky: matrix not positive definite at row " +
                                 std::to_string(j));
        const double gjj = std::sqrt(d);
        g_(j, j) = gjj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            const double* gi = g_.row(i);
            const double* gj = g_.row(j);
            for (std::size_t k = 0; k < j; ++k) s -= gi[k] * gj[k];
            g_(i, j) = s / gjj;
        }
    }
}

VectorD Cholesky::solve(const VectorD& b) const {
    const std::size_t n = g_.rows();
    PGSI_REQUIRE(b.size() == n, "Cholesky solve: rhs size mismatch");
    VectorD y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        const double* row = g_.row(i);
        for (std::size_t j = 0; j < i; ++j) acc -= row[j] * y[j];
        y[i] = acc / row[i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= g_(j, ii) * y[j];
        y[ii] = acc / g_(ii, ii);
    }
    return y;
}

MatrixD Cholesky::solve(const MatrixD& b) const {
    const std::size_t n = g_.rows();
    PGSI_REQUIRE(b.rows() == n, "Cholesky solve: rhs row count mismatch");
    MatrixD x(n, b.cols());
    VectorD col(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t i = 0; i < n; ++i) col[i] = b(i, c);
        const VectorD sol = solve(col);
        for (std::size_t i = 0; i < n; ++i) x(i, c) = sol[i];
    }
    return x;
}

MatrixD Cholesky::inverse() const {
    return solve(MatrixD::identity(g_.rows()));
}

bool is_spd(const MatrixD& a) {
    if (!a.square()) return false;
    try {
        Cholesky c(a);
        return true;
    } catch (const NumericalError&) {
        return false;
    }
}

} // namespace pgsi
