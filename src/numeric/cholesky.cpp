#include "numeric/cholesky.hpp"

#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "numeric/gemm.hpp"
#include "obs/metrics.hpp"

namespace pgsi {

namespace {

// Panel width of the blocked right-looking factorization (see lu.cpp for the
// sizing rationale) and RHS-column grain for parallel substitution.
constexpr std::size_t kBlock = 64;
constexpr std::size_t kRhsGrain = 64;

} // namespace

Cholesky::Cholesky(const MatrixD& a) : g_(a.rows(), a.cols()) {
    PGSI_REQUIRE(a.square(), "Cholesky requires a square matrix");
    const std::size_t n = a.rows();
    {
        static obs::Counter& factorizations =
            obs::counter("cholesky.factorizations");
        static obs::Histogram& sizes = obs::histogram("cholesky.n");
        ++factorizations;
        sizes.record(static_cast<double>(n));
    }
    // ‖A‖₁ = max absolute column sum (A is symmetric: row sums serve), from
    // the input before the in-place factorization.
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0;
        const double* arow = a.row(i);
        for (std::size_t j = 0; j < n; ++j) s += std::abs(arow[j]);
        anorm1_ = std::max(anorm1_, s);
    }
    // Copy the lower triangle of A, then factor in place blockwise: factor
    // the diagonal block, triangular-solve the panel below it, and fold the
    // panel into the trailing lower triangle (the O(n^3) bulk, parallel over
    // row chunks; per-entry accumulation order is fixed, so results are
    // thread-count invariant).
    for (std::size_t i = 0; i < n; ++i) {
        const double* arow = a.row(i);
        double* grow = g_.row(i);
        for (std::size_t j = 0; j <= i; ++j) grow[j] = arow[j];
    }
    for (std::size_t k0 = 0; k0 < n; k0 += kBlock) {
        const std::size_t kend = std::min(k0 + kBlock, n);
        for (std::size_t j = k0; j < kend; ++j) {
            double d = g_(j, j);
            const double* gj = g_.row(j);
            for (std::size_t t = k0; t < j; ++t) d -= gj[t] * gj[t];
            if (d <= 0.0)
                throw NumericalError(
                    "Cholesky: matrix not positive definite at row " +
                    std::to_string(j));
            const double gjj = std::sqrt(d);
            g_(j, j) = gjj;
            for (std::size_t i = j + 1; i < kend; ++i) {
                double s = g_(i, j);
                const double* gi = g_.row(i);
                for (std::size_t t = k0; t < j; ++t) s -= gi[t] * gj[t];
                g_(i, j) = s / gjj;
            }
        }
        if (kend == n) break;
        // Panel solve: G21 = A21 * G11^{-T}, parallel over the rows below.
        par::parallel_for_chunked(
            n - kend, kRhsGrain, [&](std::size_t r0, std::size_t r1) {
                for (std::size_t i = kend + r0; i < kend + r1; ++i) {
                    double* gi = g_.row(i);
                    for (std::size_t j = k0; j < kend; ++j) {
                        double s = gi[j];
                        const double* gj = g_.row(j);
                        for (std::size_t t = k0; t < j; ++t) s -= gi[t] * gj[t];
                        gi[j] = s / gj[j];
                    }
                }
            });
        // Trailing update A22 -= G21 * G21^T, lower triangle only.
        par::parallel_for_chunked(
            n - kend, kRhsGrain, [&](std::size_t r0, std::size_t r1) {
                for (std::size_t i = kend + r0; i < kend + r1; ++i) {
                    const double* gi = g_.row(i);
                    double* grow = g_.row(i);
                    for (std::size_t j = kend; j <= i; ++j) {
                        const double* gj = g_.row(j);
                        double s = 0;
                        for (std::size_t t = k0; t < kend; ++t)
                            s += gi[t] * gj[t];
                        grow[j] -= s;
                    }
                }
            });
    }
}

VectorD Cholesky::solve(const VectorD& b) const {
    const std::size_t n = g_.rows();
    PGSI_REQUIRE(b.size() == n, "Cholesky solve: rhs size mismatch");
    static obs::Counter& solves = obs::counter("cholesky.solves");
    static obs::Counter& rhs_cols = obs::counter("cholesky.rhs_cols");
    ++solves;
    ++rhs_cols;
    VectorD y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        const double* row = g_.row(i);
        for (std::size_t j = 0; j < i; ++j) acc -= row[j] * y[j];
        y[i] = acc / row[i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= g_(j, ii) * y[j];
        y[ii] = acc / g_(ii, ii);
    }
    return y;
}

MatrixD Cholesky::solve(const MatrixD& b) const {
    const std::size_t n = g_.rows();
    const std::size_t nrhs = b.cols();
    PGSI_REQUIRE(b.rows() == n, "Cholesky solve: rhs row count mismatch");
    static obs::Counter& solves = obs::counter("cholesky.solves");
    static obs::Counter& rhs_cols = obs::counter("cholesky.rhs_cols");
    ++solves;
    rhs_cols.add(nrhs);
    if (nrhs == 0) return MatrixD(n, 0);
    MatrixD x = b;
    // Forward-substitute G y = B blockwise, every RHS column at once.
    for (std::size_t k0 = 0; k0 < n; k0 += kBlock) {
        const std::size_t kend = std::min(k0 + kBlock, n);
        par::parallel_for_chunked(
            nrhs, kRhsGrain, [&](std::size_t j0, std::size_t j1) {
                const std::size_t nc = j1 - j0;
                for (std::size_t i = k0; i < kend; ++i) {
                    double* xi = x.row(i) + j0;
                    for (std::size_t t = k0; t < i; ++t) {
                        const double git = g_(i, t);
                        const double* xt = x.row(t) + j0;
                        for (std::size_t j = 0; j < nc; ++j) xi[j] -= git * xt[j];
                    }
                    const double diag = g_(i, i);
                    for (std::size_t j = 0; j < nc; ++j) xi[j] /= diag;
                }
            });
        if (kend < n)
            detail::gemm_update(-1.0, g_.row(kend) + k0, n, x.row(k0), nrhs,
                                x.row(kend), nrhs, n - kend, kend - k0, nrhs);
    }
    // Back-substitute G^T x = y blockwise. G^T's off-diagonal block is the
    // transpose of the panel below the diagonal block; pack it once so the
    // update runs as a plain GEMM over contiguous rows.
    std::vector<double> packed;
    for (std::size_t kend = n; kend > 0;) {
        const std::size_t k0 = kend > kBlock ? kend - kBlock : 0;
        const std::size_t kb = kend - k0;
        if (kend < n) {
            packed.resize(kb * (n - kend));
            for (std::size_t i = k0; i < kend; ++i)
                for (std::size_t r = kend; r < n; ++r)
                    packed[(i - k0) * (n - kend) + (r - kend)] = g_(r, i);
            detail::gemm_update(-1.0, packed.data(), n - kend, x.row(kend),
                                nrhs, x.row(k0), nrhs, kb, n - kend, nrhs);
        }
        par::parallel_for_chunked(
            nrhs, kRhsGrain, [&](std::size_t j0, std::size_t j1) {
                const std::size_t nc = j1 - j0;
                for (std::size_t ii = kend; ii-- > k0;) {
                    double* xi = x.row(ii) + j0;
                    for (std::size_t t = ii + 1; t < kend; ++t) {
                        const double gti = g_(t, ii);
                        const double* xt = x.row(t) + j0;
                        for (std::size_t j = 0; j < nc; ++j) xi[j] -= gti * xt[j];
                    }
                    const double diag = g_(ii, ii);
                    for (std::size_t j = 0; j < nc; ++j) xi[j] /= diag;
                }
            });
        kend = k0;
    }
    return x;
}

MatrixD Cholesky::inverse() const {
    return solve(MatrixD::identity(g_.rows()));
}

double Cholesky::condition_estimate() const {
    // Hager's 1-norm estimator for B = A⁻¹; A (hence B) is symmetric, so the
    // transpose application is the same solve.
    const std::size_t n = g_.rows();
    if (n == 0) return 0;
    VectorD x(n, 1.0 / static_cast<double>(n));
    double est = 0;
    std::size_t last_j = n;
    for (int iter = 0; iter < 5; ++iter) {
        const VectorD y = solve(x);
        double ynorm = 0;
        for (double v : y) ynorm += std::abs(v);
        est = std::max(est, ynorm);
        VectorD xi(n);
        for (std::size_t i = 0; i < n; ++i) xi[i] = y[i] < 0 ? -1.0 : 1.0;
        const VectorD z = solve(xi);
        std::size_t j = 0;
        double zmax = 0, zx = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const double m = std::abs(z[i]);
            if (m > zmax) {
                zmax = m;
                j = i;
            }
            zx += z[i] * x[i];
        }
        if (j == last_j || zmax <= zx) break;
        x.assign(n, 0.0);
        x[j] = 1.0;
        last_j = j;
    }
    return anorm1_ * est;
}

bool is_spd(const MatrixD& a) {
    if (!a.square()) return false;
    try {
        Cholesky c(a);
        return true;
    } catch (const NumericalError&) {
        return false;
    }
}

} // namespace pgsi
