// Symmetric eigenproblems via the cyclic Jacobi rotation method, plus the
// generalized transform used by multiconductor transmission-line modal
// analysis (§5.2): the eigenstructure of the L·C product is obtained from the
// symmetric matrix G^T C G where L = G G^T.
#pragma once

#include "numeric/matrix.hpp"

namespace pgsi {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigen {
    VectorD values;   ///< eigenvalues, ascending
    MatrixD vectors;  ///< column i is the eigenvector for values[i]
};

/// Eigendecomposition of a symmetric matrix using cyclic Jacobi rotations.
/// Throws NumericalError if the sweep limit is exceeded (does not happen for
/// well-formed symmetric input).
SymmetricEigen eigen_symmetric(const MatrixD& a, double tol = 1e-13,
                               int max_sweeps = 64);

/// Eigenstructure of the (generally non-symmetric) product L*C where both
/// L and C are SPD: returns eigenvalues (all positive) and the eigenvector
/// matrix T with L*C*T = T*diag(w). Used for quasi-TEM modal decomposition,
/// where 1/sqrt(w_i) are the modal phase velocities.
struct ProductEigen {
    VectorD values;  ///< eigenvalues of L*C, ascending, all > 0
    MatrixD t;       ///< columns: eigenvectors of L*C (voltage modal matrix)
};
ProductEigen eigen_spd_product(const MatrixD& l, const MatrixD& c);

/// Eigenvalues of a general (non-symmetric) complex matrix via Hessenberg
/// reduction and the shifted QR iteration with deflation. Intended for the
/// small pole-relocation matrices of vector fitting (n ≲ 50). Throws
/// NumericalError if the iteration stalls.
VectorC eigenvalues_general(MatrixC a, int max_iterations = 2000);

} // namespace pgsi
