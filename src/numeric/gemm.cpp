#include "numeric/gemm.hpp"

#include <algorithm>
#include <vector>

#include "common/parallel.hpp"

namespace pgsi::detail {

namespace {

// Panel height: kc rows of B (~kc*n elements) stay resident in cache while
// every row block of C streams over them. 256 doubles/row keeps the packed
// panel under L2 for the mesh sizes pgsi runs (n up to a few thousand).
constexpr std::size_t kPanelK = 256;
// Row grain handed to the pool: big enough to amortize dispatch, small
// enough to balance ragged trailing updates.
constexpr std::size_t kRowGrain = 16;

} // namespace

template <class T>
void gemm_update(T alpha, const T* a, std::size_t lda, const T* b,
                 std::size_t ldb, T* c, std::size_t ldc, std::size_t m,
                 std::size_t k, std::size_t n) {
    if (m == 0 || n == 0 || k == 0 || alpha == T{}) return;
    std::vector<T> packed(std::min(kPanelK, k) * n);
    for (std::size_t k0 = 0; k0 < k; k0 += kPanelK) {
        const std::size_t kb = std::min(kPanelK, k - k0);
        // Pack the B panel rows [k0, k0+kb) contiguously; a plain copy for
        // full matrices, a gather for strided submatrix views.
        for (std::size_t p = 0; p < kb; ++p) {
            const T* src = b + (k0 + p) * ldb;
            std::copy(src, src + n, packed.data() + p * n);
        }
        par::parallel_for_chunked(m, kRowGrain, [&](std::size_t i0,
                                                    std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                const T* arow = a + i * lda + k0;
                T* crow = c + i * ldc;
                for (std::size_t p = 0; p < kb; ++p) {
                    const T aik = alpha * arow[p];
                    if (aik == T{}) continue; // sparse operands (incidence)
                    const T* brow = packed.data() + p * n;
                    for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
                }
            }
        });
    }
}

template void gemm_update<double>(double, const double*, std::size_t,
                                  const double*, std::size_t, double*,
                                  std::size_t, std::size_t, std::size_t,
                                  std::size_t);
template void gemm_update<std::complex<double>>(
    std::complex<double>, const std::complex<double>*, std::size_t,
    const std::complex<double>*, std::size_t, std::complex<double>*,
    std::size_t, std::size_t, std::size_t, std::size_t);

} // namespace pgsi::detail
