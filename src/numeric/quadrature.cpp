#include "numeric/quadrature.hpp"

#include <cmath>
#include <map>
#include <mutex>

#include "common/constants.hpp"

namespace pgsi {

namespace {

QuadratureRule compute_gauss_legendre(int n) {
    QuadratureRule rule;
    rule.nodes.resize(n);
    rule.weights.resize(n);
    // Newton iteration from the Chebyshev-like initial guess; standard
    // Golub-Welsch-free construction adequate for n <= 16.
    for (int i = 0; i < n; ++i) {
        double x = std::cos(pi * (i + 0.75) / (n + 0.5));
        double pp = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            // Evaluate P_n(x) and its derivative by recurrence.
            double p0 = 1.0, p1 = x;
            for (int k = 2; k <= n; ++k) {
                const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
                p0 = p1;
                p1 = p2;
            }
            pp = n * (x * p1 - p0) / (x * x - 1.0);
            const double dx = p1 / pp;
            x -= dx;
            if (std::abs(dx) < 1e-15) break;
        }
        rule.nodes[i] = x;
        rule.weights[i] = 2.0 / ((1.0 - x * x) * pp * pp);
    }
    return rule;
}

} // namespace

const QuadratureRule& gauss_legendre(int n) {
    PGSI_REQUIRE(n >= 1 && n <= 16, "gauss_legendre supports orders 1..16");
    static std::map<int, QuadratureRule> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(n);
    if (it == cache.end()) it = cache.emplace(n, compute_gauss_legendre(n)).first;
    return it->second;
}

double integrate(const std::function<double(double)>& f, double a, double b, int n) {
    const QuadratureRule& rule = gauss_legendre(n);
    const double mid = 0.5 * (a + b), half = 0.5 * (b - a);
    double s = 0;
    for (int i = 0; i < n; ++i) s += rule.weights[i] * f(mid + half * rule.nodes[i]);
    return s * half;
}

double integrate2d(const std::function<double(double, double)>& f, double ax,
                   double bx, double ay, double by, int n) {
    const QuadratureRule& rule = gauss_legendre(n);
    const double mx = 0.5 * (ax + bx), hx = 0.5 * (bx - ax);
    const double my = 0.5 * (ay + by), hy = 0.5 * (by - ay);
    double s = 0;
    for (int i = 0; i < n; ++i) {
        const double x = mx + hx * rule.nodes[i];
        double row = 0;
        for (int j = 0; j < n; ++j)
            row += rule.weights[j] * f(x, my + hy * rule.nodes[j]);
        s += rule.weights[i] * row;
    }
    return s * hx * hy;
}

} // namespace pgsi
