#include "numeric/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/cholesky.hpp"

namespace pgsi {

SymmetricEigen eigen_symmetric(const MatrixD& a_in, double tol, int max_sweeps) {
    PGSI_REQUIRE(a_in.square(), "eigen_symmetric requires a square matrix");
    PGSI_REQUIRE(a_in.asymmetry() <= 1e-8 * (1.0 + a_in.max_abs()),
                 "eigen_symmetric requires a symmetric matrix");
    const std::size_t n = a_in.rows();
    MatrixD a = a_in;
    MatrixD v = MatrixD::identity(n);
    const double scale = std::max(a.max_abs(), 1e-300);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) off = std::max(off, std::abs(a(i, j)));
        if (off <= tol * scale) {
            SymmetricEigen res;
            res.values.resize(n);
            std::vector<std::size_t> order(n);
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t x, std::size_t y) { return a(x, x) < a(y, y); });
            res.vectors = MatrixD(n, n);
            for (std::size_t k = 0; k < n; ++k) {
                res.values[k] = a(order[k], order[k]);
                for (std::size_t i = 0; i < n; ++i) res.vectors(i, k) = v(i, order[k]);
            }
            return res;
        }
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::abs(apq) <= 0.1 * tol * scale) continue;
                const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p), akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
    throw NumericalError("eigen_symmetric: Jacobi sweeps did not converge");
}

ProductEigen eigen_spd_product(const MatrixD& l, const MatrixD& c) {
    PGSI_REQUIRE(l.square() && c.square() && l.rows() == c.rows(),
                 "eigen_spd_product: L and C must be square and equally sized");
    // L = G G^T; L*C is similar to the symmetric matrix G^T C G:
    //   (L C) (G x) = G (G^T C G) x, so eigenvectors of L C are G x.
    const Cholesky chol(l);
    const MatrixD& g = chol.factor();
    const MatrixD m = g.transposed() * c * g;
    SymmetricEigen se = eigen_symmetric(m);

    ProductEigen res;
    res.values = se.values;
    res.t = g * se.vectors;
    // Normalize each column to unit Euclidean length for a well-conditioned
    // modal transform.
    const std::size_t n = res.t.rows();
    for (std::size_t k = 0; k < n; ++k) {
        PGSI_REQUIRE(res.values[k] > 0, "eigen_spd_product: non-positive eigenvalue");
        double s = 0;
        for (std::size_t i = 0; i < n; ++i) s += res.t(i, k) * res.t(i, k);
        s = std::sqrt(s);
        for (std::size_t i = 0; i < n; ++i) res.t(i, k) /= s;
    }
    return res;
}

namespace {

// Complex Householder reduction to upper Hessenberg form (in place).
void hessenberg(MatrixC& a) {
    const std::size_t n = a.rows();
    for (std::size_t k = 0; k + 2 < n; ++k) {
        // Householder vector for column k, rows k+1..n-1.
        double norm = 0;
        for (std::size_t i = k + 1; i < n; ++i) norm += std::norm(a(i, k));
        norm = std::sqrt(norm);
        if (norm < 1e-300) continue;
        const Complex x0 = a(k + 1, k);
        const double ax0 = std::abs(x0);
        const Complex phase = ax0 > 0 ? x0 / ax0 : Complex(1, 0);
        const Complex alpha = -phase * norm;
        VectorC v(n, Complex{});
        v[k + 1] = x0 - alpha;
        for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
        double vnorm2 = 0;
        for (std::size_t i = k + 1; i < n; ++i) vnorm2 += std::norm(v[i]);
        if (vnorm2 < 1e-300) continue;
        // A <- (I - 2 v v^H / |v|^2) A
        for (std::size_t j = 0; j < n; ++j) {
            Complex s{};
            for (std::size_t i = k + 1; i < n; ++i)
                s += std::conj(v[i]) * a(i, j);
            s *= 2.0 / vnorm2;
            for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= v[i] * s;
        }
        // A <- A (I - 2 v v^H / |v|^2)
        for (std::size_t i = 0; i < n; ++i) {
            Complex s{};
            for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
            s *= 2.0 / vnorm2;
            for (std::size_t j = k + 1; j < n; ++j)
                a(i, j) -= s * std::conj(v[j]);
        }
    }
}

} // namespace

VectorC eigenvalues_general(MatrixC a, int max_iterations) {
    PGSI_REQUIRE(a.square(), "eigenvalues_general: matrix must be square");
    const std::size_t n = a.rows();
    if (n == 0) return {};
    if (n == 1) return {a(0, 0)};
    hessenberg(a);

    VectorC eig;
    eig.reserve(n);
    std::size_t m = n; // active block is rows/cols [0, m)
    const double scale = std::max(a.max_abs(), 1e-300);
    int iter = 0;
    while (m > 0) {
        if (m == 1) {
            eig.push_back(a(0, 0));
            break;
        }
        // Deflate converged subdiagonals at the bottom of the block.
        if (std::abs(a(m - 1, m - 2)) <
            1e-14 * (std::abs(a(m - 1, m - 1)) + std::abs(a(m - 2, m - 2)) +
                     scale * 1e-2)) {
            eig.push_back(a(m - 1, m - 1));
            --m;
            continue;
        }
        if (++iter > max_iterations)
            throw NumericalError("eigenvalues_general: QR iteration stalled");

        // Wilkinson shift from the trailing 2x2 of the active block.
        const Complex h00 = a(m - 2, m - 2), h01 = a(m - 2, m - 1);
        const Complex h10 = a(m - 1, m - 2), h11 = a(m - 1, m - 1);
        const Complex tr = h00 + h11;
        const Complex det = h00 * h11 - h01 * h10;
        const Complex disc = std::sqrt(tr * tr - 4.0 * det);
        const Complex mu1 = 0.5 * (tr + disc), mu2 = 0.5 * (tr - disc);
        const Complex mu =
            std::abs(mu1 - h11) < std::abs(mu2 - h11) ? mu1 : mu2;

        // One shifted QR sweep via Givens rotations on the Hessenberg block.
        std::vector<Complex> cs(m - 1), sn(m - 1);
        for (std::size_t k = 0; k < m; ++k) a(k, k) -= mu;
        for (std::size_t k = 0; k + 1 < m; ++k) {
            const Complex f = a(k, k), g = a(k + 1, k);
            const double r = std::sqrt(std::norm(f) + std::norm(g));
            if (r < 1e-300) {
                cs[k] = Complex(1, 0);
                sn[k] = Complex(0, 0);
                continue;
            }
            cs[k] = f / r;
            sn[k] = g / r;
            for (std::size_t j = k; j < m; ++j) {
                const Complex t1 = a(k, j), t2 = a(k + 1, j);
                a(k, j) = std::conj(cs[k]) * t1 + std::conj(sn[k]) * t2;
                a(k + 1, j) = -sn[k] * t1 + cs[k] * t2;
            }
        }
        for (std::size_t k = 0; k + 1 < m; ++k) {
            const std::size_t hi = std::min(m, k + 3);
            for (std::size_t i = 0; i < hi; ++i) {
                const Complex t1 = a(i, k), t2 = a(i, k + 1);
                a(i, k) = t1 * cs[k] + t2 * sn[k];
                a(i, k + 1) = -t1 * std::conj(sn[k]) + t2 * std::conj(cs[k]);
            }
        }
        for (std::size_t k = 0; k < m; ++k) a(k, k) += mu;
    }
    return eig;
}

} // namespace pgsi
