#include "numeric/matrix.hpp"

#include <cmath>

namespace pgsi {

double norm2(const VectorD& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
}

double norm2(const VectorC& v) {
    double s = 0;
    for (const auto& x : v) s += std::norm(x);
    return std::sqrt(s);
}

double max_abs(const VectorD& v) {
    double m = 0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
}

double max_abs(const VectorC& v) {
    double m = 0;
    for (const auto& x : v) m = std::max(m, std::abs(x));
    return m;
}

double dot(const VectorD& a, const VectorD& b) {
    PGSI_REQUIRE(a.size() == b.size(), "dot: size mismatch");
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

void axpy(double s, const VectorD& x, VectorD& y) {
    PGSI_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += s * x[i];
}

MatrixC to_complex(const MatrixD& m) {
    MatrixC c(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j) c(i, j) = Complex(m(i, j), 0.0);
    return c;
}

MatrixD real_part(const MatrixC& m) {
    MatrixD r(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j) r(i, j) = m(i, j).real();
    return r;
}

MatrixD imag_part(const MatrixC& m) {
    MatrixD r(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j) r(i, j) = m(i, j).imag();
    return r;
}

} // namespace pgsi
