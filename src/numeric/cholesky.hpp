// Cholesky factorization for symmetric positive-definite matrices.
//
// The partial-inductance and potential-coefficient matrices of the plane BEM
// are SPD by construction (energy matrices of a passive structure); Cholesky
// both halves the factorization cost and acts as a passivity check — a failed
// factorization flags a broken Green's-function evaluation long before it
// could surface as a non-physical extracted circuit.
#pragma once

#include "numeric/matrix.hpp"

namespace pgsi {

/// Cholesky factorization A = G G^T of a symmetric positive-definite matrix.
class Cholesky {
public:
    /// Factor a. Throws NumericalError if a is not positive definite.
    explicit Cholesky(const MatrixD& a);

    /// Solve A x = b.
    VectorD solve(const VectorD& b) const;

    /// Solve A X = B column by column.
    MatrixD solve(const MatrixD& b) const;

    /// Dense inverse of A.
    MatrixD inverse() const;

    /// Lower-triangular factor G.
    const MatrixD& factor() const { return g_; }

    /// 1-norm of the factored matrix A (recorded before factorization).
    double norm1() const { return anorm1_; }

    /// Hager estimate of the 1-norm condition number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁.
    /// A is symmetric, so the estimator needs only forward solves; cost is a
    /// handful of O(n²) substitutions.
    double condition_estimate() const;

    std::size_t size() const { return g_.rows(); }

private:
    MatrixD g_; // lower triangular
    double anorm1_ = 0;
};

/// True if a is symmetric positive definite (attempts a Cholesky factorization).
bool is_spd(const MatrixD& a);

} // namespace pgsi
