// Cache-blocked, pool-parallel dense matrix-multiply kernel.
//
// The dense hot paths of the library (matrix products, LU/Cholesky trailing
// updates, multi-RHS substitutions) all reduce to the rank-k update
//
//     C[0..m, 0..n) += alpha * A[0..m, 0..k) * B[0..k, 0..n)
//
// over row-major storage with independent leading dimensions, so factorization
// code can point A/B/C at submatrices of one allocation. The kernel blocks
// over k (panel height kc) and packs each B panel into contiguous storage so
// the innermost j-loop streams packed data regardless of ldb; rows of C are
// distributed over the shared pgsi::par pool. Per-(i,j) accumulation order is
// fixed (k panels ascending, rows ascending inside each panel), so results
// are bit-identical at any thread count.
#pragma once

#include <complex>
#include <cstddef>

namespace pgsi::detail {

/// C += alpha * A * B (shapes m×k · k×n, row-major, leading dimensions
/// lda/ldb/ldc). Safe to call from inside a parallel region (runs inline).
template <class T>
void gemm_update(T alpha, const T* a, std::size_t lda, const T* b,
                 std::size_t ldb, T* c, std::size_t ldc, std::size_t m,
                 std::size_t k, std::size_t n);

extern template void gemm_update<double>(double, const double*, std::size_t,
                                         const double*, std::size_t, double*,
                                         std::size_t, std::size_t, std::size_t,
                                         std::size_t);
extern template void gemm_update<std::complex<double>>(
    std::complex<double>, const std::complex<double>*, std::size_t,
    const std::complex<double>*, std::size_t, std::complex<double>*,
    std::size_t, std::size_t, std::size_t, std::size_t);

} // namespace pgsi::detail
