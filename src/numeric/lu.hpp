// LU factorization with partial pivoting for dense real/complex systems.
//
// The factorization is stored so it can be reused across many right-hand
// sides — the transient circuit solver (§5.1) factors its constant MNA matrix
// once per conductance change and back-substitutes every time step.
#pragma once

#include "numeric/matrix.hpp"

namespace pgsi {

/// LU decomposition with partial pivoting of a square matrix over T.
template <class T>
class Lu {
public:
    /// Factor a (copies it). Throws NumericalError if a is singular to
    /// working precision.
    explicit Lu(Matrix<T> a);

    /// Solve A x = b for a single right-hand side.
    std::vector<T> solve(const std::vector<T>& b) const;

    /// Solve A X = B column by column.
    Matrix<T> solve(const Matrix<T>& b) const;

    /// Inverse of A (solves against the identity).
    Matrix<T> inverse() const;

    /// Determinant of A (product of pivots with permutation sign).
    T determinant() const;

    /// 1-norm of the factored matrix A (recorded before factorization).
    double norm1() const { return anorm1_; }

    /// Hager/Higham estimate of the 1-norm condition number κ₁(A) =
    /// ‖A‖₁·‖A⁻¹‖₁, from a handful of O(n²) solves against the stored
    /// factors (a lower bound, usually within a small factor of the truth).
    double condition_estimate() const;

    std::size_t size() const { return lu_.rows(); }

private:
    /// Solve Aᴴ x = b through the stored factors (Hager estimator needs it).
    std::vector<T> solve_adjoint(const std::vector<T>& b) const;

    Matrix<T> lu_;             // combined L (unit lower) and U factors
    std::vector<std::size_t> perm_; // row permutation
    double anorm1_ = 0;        // ‖A‖₁ of the input matrix
    int sign_ = 1;
};

extern template class Lu<double>;
extern template class Lu<Complex>;

/// One-shot convenience: solve A x = b.
template <class T>
std::vector<T> solve_linear(const Matrix<T>& a, const std::vector<T>& b) {
    return Lu<T>(a).solve(b);
}

/// One-shot convenience: dense inverse.
template <class T>
Matrix<T> inverse(const Matrix<T>& a) {
    return Lu<T>(a).inverse();
}

} // namespace pgsi
