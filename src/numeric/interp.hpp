// Sampled-waveform utilities: linear interpolation and a delay line.
//
// The method-of-characteristics transmission-line model (§5.2) needs the
// incident wave a propagation delay in the past; with a uniform simulator
// time step the delay generally falls between samples, so the history is
// linearly interpolated.
#pragma once

#include <deque>
#include <vector>

#include "numeric/matrix.hpp"

namespace pgsi {

/// Piecewise-linear function defined by sorted sample points (t, v).
/// Evaluation clamps outside the sample range.
class PiecewiseLinear {
public:
    PiecewiseLinear() = default;
    /// Construct from sorted abscissae t (strictly increasing) and values v.
    PiecewiseLinear(VectorD t, VectorD v);

    /// Value at time x (clamped to the end values outside the range).
    double operator()(double x) const;

    /// Local slope dv/dx at x (0 outside the sample range, where the value
    /// is clamped).
    double slope(double x) const;

    bool empty() const { return t_.empty(); }
    const VectorD& abscissae() const { return t_; }
    const VectorD& values() const { return v_; }

private:
    VectorD t_, v_;
};

/// Fixed-rate delay line: push one sample per time step, read values an
/// arbitrary (non-integer) number of steps in the past with linear
/// interpolation. Values older than the capacity are discarded.
class DelayLine {
public:
    /// dt: sample spacing; max_delay: maximum look-back supported.
    DelayLine(double dt, double max_delay, double initial_value = 0.0);

    /// Append the sample for the current time step.
    void push(double v);

    /// Value `delay` seconds before the most recent pushed sample.
    /// delay must be in [0, max_delay].
    double value_before_last(double delay) const;

private:
    double dt_;
    std::size_t capacity_;
    std::deque<double> samples_; // front = oldest
};

} // namespace pgsi
