#include "geometry/polygon.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pgsi {

Polygon::Polygon(std::vector<Point2> vertices) : verts_(std::move(vertices)) {
    PGSI_REQUIRE(verts_.size() >= 3, "Polygon needs at least 3 vertices");
}

Polygon Polygon::rectangle(double x0, double y0, double x1, double y1) {
    PGSI_REQUIRE(x1 > x0 && y1 > y0, "rectangle: degenerate extents");
    return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

Polygon Polygon::lshape(double w, double h, double cut_x, double cut_y) {
    PGSI_REQUIRE(w > 0 && h > 0, "lshape: degenerate extents");
    PGSI_REQUIRE(cut_x > 0 && cut_x < w && cut_y > 0 && cut_y < h,
                 "lshape: cut must be interior");
    return Polygon({{0, 0}, {w, 0}, {w, cut_y}, {cut_x, cut_y}, {cut_x, h}, {0, h}});
}

bool Polygon::contains(Point2 p) const {
    bool inside = false;
    const std::size_t n = verts_.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const Point2& a = verts_[i];
        const Point2& b = verts_[j];
        const bool crosses = (a.y > p.y) != (b.y > p.y);
        if (crosses) {
            const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if (p.x < x_at) inside = !inside;
        }
    }
    return inside;
}

double Polygon::signed_area() const {
    double s = 0;
    const std::size_t n = verts_.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++)
        s += verts_[j].x * verts_[i].y - verts_[i].x * verts_[j].y;
    return 0.5 * s;
}

Bbox Polygon::bbox() const {
    Bbox b{verts_[0].x, verts_[0].y, verts_[0].x, verts_[0].y};
    for (const Point2& p : verts_) {
        b.x0 = std::min(b.x0, p.x);
        b.y0 = std::min(b.y0, p.y);
        b.x1 = std::max(b.x1, p.x);
        b.y1 = std::max(b.y1, p.y);
    }
    return b;
}

} // namespace pgsi
