// Simple polygons for describing plane shapes: power/ground planes, split
// (complementary) planes, cutouts and antipads (Fig. 1 of the paper).
#pragma once

#include <vector>

#include "geometry/point2.hpp"

namespace pgsi {

/// Axis-aligned bounding box.
struct Bbox {
    double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
};

/// A simple (non-self-intersecting) polygon. Orientation does not matter;
/// containment uses the even-odd rule.
class Polygon {
public:
    Polygon() = default;
    /// Construct from a vertex list (at least 3 vertices).
    explicit Polygon(std::vector<Point2> vertices);

    /// Axis-aligned rectangle [x0,x1] x [y0,y1].
    static Polygon rectangle(double x0, double y0, double x1, double y1);

    /// An L-shape: the rectangle [0,w] x [0,h] minus its upper-right
    /// sub-rectangle [cut_x,w] x [cut_y,h]. Matches the classic L-shaped
    /// microstrip patch benchmark (paper §6.1 example 1).
    static Polygon lshape(double w, double h, double cut_x, double cut_y);

    const std::vector<Point2>& vertices() const { return verts_; }

    /// Even-odd point containment. Points exactly on an edge count as inside
    /// for the purposes of meshing (cell centers never land on edges when
    /// the pitch does not divide the geometry degenerately).
    bool contains(Point2 p) const;

    /// Signed area (positive for counter-clockwise orientation).
    double signed_area() const;
    /// Absolute area.
    double area() const { return std::abs(signed_area()); }

    Bbox bbox() const;

private:
    std::vector<Point2> verts_;
};

} // namespace pgsi
