// Minimal 2-D point/vector type used across geometry, EM and board modules.
#pragma once

#include <cmath>

namespace pgsi {

/// A point (or displacement) in the board plane, metres.
struct Point2 {
    double x = 0;
    double y = 0;

    friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
    friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
    friend Point2 operator*(double s, Point2 a) { return {s * a.x, s * a.y}; }
    friend bool operator==(Point2 a, Point2 b) { return a.x == b.x && a.y == b.y; }
};

/// Euclidean distance between two points.
inline double distance(Point2 a, Point2 b) {
    return std::hypot(a.x - b.x, a.y - b.y);
}

} // namespace pgsi
