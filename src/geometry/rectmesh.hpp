// Rectangular surface mesh of arbitrary plane shapes (§3.2).
//
// Each conductor shape (a polygon with optional holes, at a given height z
// above the reference plane) is discretized on a uniform grid: every grid
// cell whose center lies inside the shape becomes a *charge cell* — a node of
// the discrete system carrying pulse-basis charge and potential. Every pair
// of 4-adjacent cells is connected by a *current cell* (branch): a rectangle
// spanning the two cell centers with the full cell width, carrying a uniform
// current along x or y. This is exactly the subsectional basis of the paper's
// boundary-element discretization (pulse charge/potential, bilinear-continuity
// current), realized in its standard PEEC form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/polygon.hpp"

namespace pgsi {

/// One conductor shape to be meshed: a polygon (with holes) at height z.
struct ConductorShape {
    Polygon outline;              ///< outer boundary
    std::vector<Polygon> holes;   ///< cutouts / antipads
    double z = 0;                 ///< height above the reference plane [m]
    double sheet_resistance = 0;  ///< DC sheet resistance [ohm/square]
    std::string name;             ///< net name (informational)
};

/// Direction of a current cell.
enum class BranchDir { X, Y };

/// A node of the mesh: one rectangular charge cell.
struct MeshNode {
    Point2 center;       ///< cell center
    double dx = 0;       ///< cell width in x [m]
    double dy = 0;       ///< cell width in y [m]
    double z = 0;        ///< conductor height [m]
    std::size_t shape = 0; ///< index of the owning ConductorShape
};

/// A branch of the mesh: one rectangular current cell between two adjacent
/// charge cells.
struct MeshBranch {
    std::size_t n1 = 0;  ///< tail node (current flows n1 -> n2 when positive)
    std::size_t n2 = 0;  ///< head node
    BranchDir dir = BranchDir::X;
    // Rectangle occupied by the current cell:
    double x0 = 0, x1 = 0, y0 = 0, y1 = 0;
    double z = 0;
    std::size_t shape = 0;

    double length() const { return dir == BranchDir::X ? x1 - x0 : y1 - y0; }
    double width() const { return dir == BranchDir::X ? y1 - y0 : x1 - x0; }
};

/// Uniform rectangular mesh over one or more conductor shapes.
class RectMesh {
public:
    /// Mesh the given shapes with the given grid pitch [m]. Every shape gets
    /// its own grid anchored at its bounding-box corner. Throws if any shape
    /// produces no cells (pitch too coarse).
    RectMesh(std::vector<ConductorShape> shapes, double pitch);

    const std::vector<MeshNode>& nodes() const { return nodes_; }
    const std::vector<MeshBranch>& branches() const { return branches_; }
    const std::vector<ConductorShape>& shapes() const { return shapes_; }
    double pitch() const { return pitch_; }

    std::size_t node_count() const { return nodes_.size(); }
    std::size_t branch_count() const { return branches_.size(); }

    /// Index of the mesh node nearest to point p on the given shape.
    std::size_t nearest_node(Point2 p, std::size_t shape = 0) const;

    /// Index of the mesh node nearest to p across all shapes.
    std::size_t nearest_node_any(Point2 p) const;

    /// Connected-component label of every node (components are connected via
    /// branches only; two split planes yield two components).
    const std::vector<std::size_t>& component_of() const { return component_; }
    std::size_t component_count() const { return component_count_; }

private:
    std::vector<ConductorShape> shapes_;
    double pitch_;
    std::vector<MeshNode> nodes_;
    std::vector<MeshBranch> branches_;
    std::vector<std::size_t> component_;
    std::size_t component_count_ = 0;

    void build();
    void label_components();
};

} // namespace pgsi
