#include "geometry/rectmesh.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "common/error.hpp"

namespace pgsi {

RectMesh::RectMesh(std::vector<ConductorShape> shapes, double pitch)
    : shapes_(std::move(shapes)), pitch_(pitch) {
    PGSI_REQUIRE(!shapes_.empty(), "RectMesh: no shapes");
    PGSI_REQUIRE(pitch_ > 0, "RectMesh: pitch must be positive");
    build();
    label_components();
}

void RectMesh::build() {
    for (std::size_t s = 0; s < shapes_.size(); ++s) {
        const ConductorShape& shape = shapes_[s];
        const Bbox bb = shape.outline.bbox();
        const auto nx = static_cast<long>(std::ceil(bb.width() / pitch_ - 1e-9));
        const auto ny = static_cast<long>(std::ceil(bb.height() / pitch_ - 1e-9));
        PGSI_REQUIRE(nx >= 1 && ny >= 1, "RectMesh: shape smaller than pitch");
        // Stretch the pitch slightly so an integer number of cells exactly
        // tiles the bounding box in each direction.
        const double dx = bb.width() / static_cast<double>(nx);
        const double dy = bb.height() / static_cast<double>(ny);

        std::map<std::pair<long, long>, std::size_t> cell_index;
        for (long iy = 0; iy < ny; ++iy) {
            for (long ix = 0; ix < nx; ++ix) {
                const Point2 c{bb.x0 + (ix + 0.5) * dx, bb.y0 + (iy + 0.5) * dy};
                if (!shape.outline.contains(c)) continue;
                bool in_hole = false;
                for (const Polygon& h : shape.holes)
                    if (h.contains(c)) {
                        in_hole = true;
                        break;
                    }
                if (in_hole) continue;
                MeshNode node;
                node.center = c;
                node.dx = dx;
                node.dy = dy;
                node.z = shape.z;
                node.shape = s;
                cell_index[{ix, iy}] = nodes_.size();
                nodes_.push_back(node);
            }
        }
        PGSI_REQUIRE(!cell_index.empty(),
                     "RectMesh: shape '" + shape.name + "' produced no cells");

        // Branches between 4-adjacent cells of this shape.
        for (const auto& [key, n1] : cell_index) {
            const auto [ix, iy] = key;
            const MeshNode& a = nodes_[n1];
            if (auto it = cell_index.find({ix + 1, iy}); it != cell_index.end()) {
                const MeshNode& b = nodes_[it->second];
                MeshBranch br;
                br.n1 = n1;
                br.n2 = it->second;
                br.dir = BranchDir::X;
                br.x0 = a.center.x;
                br.x1 = b.center.x;
                br.y0 = a.center.y - 0.5 * dy;
                br.y1 = a.center.y + 0.5 * dy;
                br.z = shape.z;
                br.shape = s;
                branches_.push_back(br);
            }
            if (auto it = cell_index.find({ix, iy + 1}); it != cell_index.end()) {
                const MeshNode& b = nodes_[it->second];
                MeshBranch br;
                br.n1 = n1;
                br.n2 = it->second;
                br.dir = BranchDir::Y;
                br.x0 = a.center.x - 0.5 * dx;
                br.x1 = a.center.x + 0.5 * dx;
                br.y0 = a.center.y;
                br.y1 = b.center.y;
                br.z = shape.z;
                br.shape = s;
                branches_.push_back(br);
            }
        }
    }
}

void RectMesh::label_components() {
    component_.assign(nodes_.size(), std::numeric_limits<std::size_t>::max());
    std::vector<std::vector<std::size_t>> adj(nodes_.size());
    for (const MeshBranch& b : branches_) {
        adj[b.n1].push_back(b.n2);
        adj[b.n2].push_back(b.n1);
    }
    component_count_ = 0;
    for (std::size_t start = 0; start < nodes_.size(); ++start) {
        if (component_[start] != std::numeric_limits<std::size_t>::max()) continue;
        std::queue<std::size_t> q;
        q.push(start);
        component_[start] = component_count_;
        while (!q.empty()) {
            const std::size_t u = q.front();
            q.pop();
            for (std::size_t v : adj[u]) {
                if (component_[v] == std::numeric_limits<std::size_t>::max()) {
                    component_[v] = component_count_;
                    q.push(v);
                }
            }
        }
        ++component_count_;
    }
}

std::size_t RectMesh::nearest_node(Point2 p, std::size_t shape) const {
    PGSI_REQUIRE(shape < shapes_.size(), "nearest_node: shape index out of range");
    std::size_t best = std::numeric_limits<std::size_t>::max();
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].shape != shape) continue;
        const double d = distance(nodes_[i].center, p);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    PGSI_ASSERT(best != std::numeric_limits<std::size_t>::max());
    return best;
}

std::size_t RectMesh::nearest_node_any(Point2 p) const {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const double d = distance(nodes_[i].center, p);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

} // namespace pgsi
