// Greedy scenario shrinking and repro emission.
//
// On an invariant failure the shrinker minimizes the scenario while the
// failure persists: drop whole shapes (collapse layers), drop holes and
// L-cuts, normalize stretched lattices, drop ports, halve and then decrement
// cell counts. Every candidate is re-validated and re-checked through the
// caller's predicate, so the final scenario is the smallest one (under these
// moves) that still fails — the form a human wants to debug and the form the
// emitted regression snippet pins down.
#pragma once

#include <functional>
#include <string>

#include "verify/invariants.hpp"
#include "verify/scenario.hpp"

namespace pgsi::verify {

/// Returns true when the candidate still exhibits the failure under
/// investigation. Candidates that throw are treated as not failing (the
/// shrinker never trades one bug for a different crash).
using FailPredicate = std::function<bool(const PlaneScenario&)>;

struct ShrinkResult {
    PlaneScenario scenario;  ///< smallest still-failing scenario found
    int moves_tried = 0;
    int moves_kept = 0;
};

/// Greedily minimize `start` (which must satisfy `still_fails`).
ShrinkResult shrink_scenario(const PlaneScenario& start,
                             const FailPredicate& still_fails);

/// Paths of an emitted repro pair.
struct ReproPaths {
    std::string cpp_path;
    std::string board_path;
};

/// Write `<dir>/<tag>.cpp` (tests/-ready gtest snippet) and `<dir>/<tag>.board`
/// for the given scenario and failure; creates `dir` if needed.
ReproPaths write_repro(const std::string& dir, const std::string& tag,
                       const PlaneScenario& scenario,
                       const CheckResult& failure);

} // namespace pgsi::verify
