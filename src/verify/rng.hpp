// Deterministic pseudo-random streams for the verification harness.
//
// SplitMix64 (Steele/Lea/Flood, JPDC 2014): tiny, full-period, and — unlike
// std::mt19937 fed through standard-library distributions, whose float
// streams are implementation-defined — stable across platforms, compilers
// and libstdc++ versions. Every campaign iteration derives an independent
// stream from (campaign seed, iteration index), so any failure reproduces
// from two integers no matter which suites ran or in what order.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace pgsi::verify {

/// Seeded deterministic generator. Copyable; copies advance independently.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /// Independent, decorrelated stream `stream` of campaign seed `seed`.
    static Rng stream(std::uint64_t seed, std::uint64_t stream) {
        Rng a(seed);
        Rng b(stream * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull);
        Rng mixed(a.next_u64() ^ (b.next_u64() + 0x9e3779b97f4a7c15ull));
        mixed.next_u64(); // decorrelate adjacent (seed, stream) pairs
        return mixed;
    }

    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, 1).
    double uniform() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Log-uniform in [lo, hi); both bounds must be positive.
    double log_uniform(double lo, double hi) {
        PGSI_REQUIRE(lo > 0 && hi > 0, "Rng::log_uniform: bounds must be > 0");
        return std::exp(uniform(std::log(lo), std::log(hi)));
    }

    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi) {
        PGSI_REQUIRE(lo <= hi, "Rng::uniform_int: empty range");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(next_u64() % span);
    }

    /// True with probability p.
    bool chance(double p) { return uniform() < p; }

    /// Uniformly chosen element of a non-empty vector.
    template <typename T>
    const T& pick(const std::vector<T>& v) {
        PGSI_REQUIRE(!v.empty(), "Rng::pick: empty vector");
        return v[static_cast<std::size_t>(
            uniform_int(0, static_cast<int>(v.size()) - 1))];
    }

private:
    std::uint64_t state_;
};

} // namespace pgsi::verify
