#include "verify/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "circuit/sources.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "em/greens.hpp"

namespace pgsi::verify {

namespace {

double shape_cell(const PlaneScenario& s, const ShapeSpec& sh) {
    return s.pitch * sh.stretch;
}

Bbox shape_bbox(const PlaneScenario& s, const ShapeSpec& sh) {
    const double cell = shape_cell(s, sh);
    const double x0 = sh.ox * s.pitch;
    const double y0 = sh.oy * s.pitch;
    return Bbox{x0, y0, x0 + sh.nx * cell, y0 + sh.ny * cell};
}

bool overlap(const Bbox& a, const Bbox& b, double margin) {
    return a.x0 < b.x1 + margin && b.x0 < a.x1 + margin &&
           a.y0 < b.y1 + margin && b.y0 < a.y1 + margin;
}

} // namespace

void PlaneScenario::validate() const {
    PGSI_REQUIRE(pitch > 0, "scenario: pitch must be positive");
    PGSI_REQUIRE(sheet_resistance > 0, "scenario: sheet resistance must be > 0");
    PGSI_REQUIRE(eps_r >= 1, "scenario: eps_r must be >= 1");
    PGSI_REQUIRE(!shapes.empty(), "scenario: no shapes");
    for (const ShapeSpec& sh : shapes) {
        PGSI_REQUIRE(sh.nx >= 2 && sh.ny >= 2, "scenario: shape below 2x2 cells");
        PGSI_REQUIRE(sh.stretch > 0, "scenario: non-positive stretch");
        PGSI_REQUIRE(sh.z > 0, "scenario: shape height must be > 0");
        if (sh.hole) {
            const CellRect& h = *sh.hole;
            PGSI_REQUIRE(h.x0 >= 1 && h.y0 >= 1 && h.x1 <= sh.nx - 1 &&
                             h.y1 <= sh.ny - 1 && h.x1 > h.x0 && h.y1 > h.y0,
                         "scenario: hole not strictly interior");
        }
        if (sh.lcut) {
            const CellRect& c = *sh.lcut;
            PGSI_REQUIRE(c.x0 >= 1 && c.x0 <= sh.nx - 1 && c.y0 >= 1 &&
                             c.y0 <= sh.ny - 1,
                         "scenario: L-cut corner outside the shape");
        }
        PGSI_REQUIRE(!(sh.hole && sh.lcut),
                     "scenario: hole and L-cut on one shape are unsupported");
    }
    // Same-height shapes must not overlap (coincident cells would alias).
    for (std::size_t i = 0; i < shapes.size(); ++i)
        for (std::size_t j = i + 1; j < shapes.size(); ++j)
            if (shapes[i].z == shapes[j].z)
                PGSI_REQUIRE(!overlap(shape_bbox(*this, shapes[i]),
                                      shape_bbox(*this, shapes[j]), 0.0),
                             "scenario: overlapping shapes at one height");
    for (const PortSpec& p : ports)
        PGSI_REQUIRE(p.shape < shapes.size(), "scenario: port on missing shape");
}

RectMesh PlaneScenario::make_mesh() const {
    validate();
    std::vector<ConductorShape> cs;
    cs.reserve(shapes.size());
    for (std::size_t k = 0; k < shapes.size(); ++k) {
        const ShapeSpec& sh = shapes[k];
        const double cell = shape_cell(*this, sh);
        const Bbox bb = shape_bbox(*this, sh);
        ConductorShape c;
        c.z = sh.z;
        c.sheet_resistance = sheet_resistance;
        c.name = "s" + std::to_string(k);
        if (sh.lcut) {
            const double cx = bb.x0 + sh.lcut->x0 * cell;
            const double cy = bb.y0 + sh.lcut->y0 * cell;
            c.outline = Polygon({{bb.x0, bb.y0},
                                 {bb.x1, bb.y0},
                                 {bb.x1, cy},
                                 {cx, cy},
                                 {cx, bb.y1},
                                 {bb.x0, bb.y1}});
        } else {
            c.outline = Polygon::rectangle(bb.x0, bb.y0, bb.x1, bb.y1);
        }
        if (sh.hole)
            c.holes.push_back(Polygon::rectangle(
                bb.x0 + sh.hole->x0 * cell, bb.y0 + sh.hole->y0 * cell,
                bb.x0 + sh.hole->x1 * cell, bb.y0 + sh.hole->y1 * cell));
        cs.push_back(std::move(c));
    }
    return RectMesh(std::move(cs), pitch);
}

PlaneBem PlaneScenario::make_bem(AssemblyMode mode) const {
    BemOptions opt;
    opt.testing = testing;
    opt.assembly = mode;
    return PlaneBem(make_mesh(), Greens::homogeneous(eps_r, true), opt);
}

SurfaceImpedance PlaneScenario::surface_impedance() const {
    return SurfaceImpedance::from_sheet_resistance(sheet_resistance);
}

std::vector<std::size_t> PlaneScenario::port_nodes(const RectMesh& mesh) const {
    std::vector<std::size_t> nodes;
    nodes.reserve(ports.size());
    for (const PortSpec& p : ports) {
        const Bbox bb = shape_bbox(*this, shapes[p.shape]);
        const Point2 pos{bb.x0 + p.fx * bb.width(), bb.y0 + p.fy * bb.height()};
        nodes.push_back(mesh.nearest_node(pos, p.shape));
    }
    return nodes;
}

std::size_t PlaneScenario::cell_count() const {
    return make_mesh().node_count();
}

std::size_t PlaneScenario::layer_count() const {
    std::set<double> zs;
    for (const ShapeSpec& sh : shapes) zs.insert(sh.z);
    return zs.size();
}

bool PlaneScenario::separable() const {
    return shapes.size() == 1 && !shapes[0].hole && !shapes[0].lcut &&
           shapes[0].stretch == 1.0;
}

double PlaneScenario::est_first_resonance() const {
    double x0 = 1e300, y0 = 1e300, x1 = -1e300, y1 = -1e300;
    for (const ShapeSpec& sh : shapes) {
        const Bbox bb = shape_bbox(*this, sh);
        x0 = std::min(x0, bb.x0);
        y0 = std::min(y0, bb.y0);
        x1 = std::max(x1, bb.x1);
        y1 = std::max(y1, bb.y1);
    }
    const double extent = std::max(x1 - x0, y1 - y0);
    return c0 / (std::sqrt(eps_r) * 2.0 * extent);
}

std::string PlaneScenario::describe() const {
    std::ostringstream os;
    os.precision(6);
    os << kind << " seed=" << seed << " pitch=" << pitch
       << " rs=" << sheet_resistance << " eps=" << eps_r
       << " testing=" << (testing == Testing::Galerkin ? "galerkin" : "pm");
    for (const ShapeSpec& sh : shapes) {
        os << " | shape " << sh.nx << "x" << sh.ny << "+" << sh.ox << "+"
           << sh.oy << " z=" << sh.z;
        if (sh.stretch != 1.0) os << " stretch=" << sh.stretch;
        if (sh.hole)
            os << " hole=[" << sh.hole->x0 << "," << sh.hole->y0 << ","
               << sh.hole->x1 << "," << sh.hole->y1 << "]";
        if (sh.lcut) os << " lcut=(" << sh.lcut->x0 << "," << sh.lcut->y0 << ")";
    }
    for (const PortSpec& p : ports)
        os << " | port s" << p.shape << " (" << p.fx << "," << p.fy << ")";
    return os.str();
}

std::string PlaneScenario::to_cpp(const std::string& test_name,
                                  const std::string& invariant) const {
    std::ostringstream os;
    os.precision(17);
    os << "// Auto-generated repro emitted by pgsi::verify.\n"
       << "//   invariant: " << invariant << "\n"
       << "//   scenario:  " << describe() << "\n"
       << "// Promote to a permanent regression test by copying this file\n"
       << "// into tests/ and adding it to PGSI_TEST_SOURCES.\n"
       << "#include <gtest/gtest.h>\n\n"
       << "#include \"verify/invariants.hpp\"\n"
       << "#include \"verify/scenario.hpp\"\n\n"
       << "TEST(VerifyRepro, " << test_name << ") {\n"
       << "    using namespace pgsi;\n"
       << "    verify::PlaneScenario s;\n"
       << "    s.seed = " << seed << "ull;\n"
       << "    s.kind = \"" << kind << "\";\n"
       << "    s.pitch = " << pitch << ";\n"
       << "    s.sheet_resistance = " << sheet_resistance << ";\n"
       << "    s.eps_r = " << eps_r << ";\n"
       << "    s.testing = Testing::"
       << (testing == Testing::Galerkin ? "Galerkin" : "PointMatching")
       << ";\n";
    for (const ShapeSpec& sh : shapes) {
        os << "    {\n        verify::ShapeSpec sh;\n"
           << "        sh.nx = " << sh.nx << "; sh.ny = " << sh.ny
           << "; sh.ox = " << sh.ox << "; sh.oy = " << sh.oy << ";\n"
           << "        sh.z = " << sh.z << "; sh.stretch = " << sh.stretch
           << ";\n";
        if (sh.hole)
            os << "        sh.hole = verify::CellRect{" << sh.hole->x0 << ", "
               << sh.hole->y0 << ", " << sh.hole->x1 << ", " << sh.hole->y1
               << "};\n";
        if (sh.lcut)
            os << "        sh.lcut = verify::CellRect{" << sh.lcut->x0 << ", "
               << sh.lcut->y0 << ", " << sh.lcut->x1 << ", " << sh.lcut->y1
               << "};\n";
        os << "        s.shapes.push_back(sh);\n    }\n";
    }
    for (const PortSpec& p : ports)
        os << "    s.ports.push_back(verify::PortSpec{" << p.shape << ", "
           << p.fx << ", " << p.fy << "});\n";
    os << "    const verify::CheckResult r = verify::run_plane_invariant(\n"
       << "        s, \"" << invariant << "\", verify::ToleranceLadder{});\n"
       << "    EXPECT_TRUE(r.pass) << r.invariant << \": \" << r.detail;\n"
       << "}\n";
    return os.str();
}

std::string PlaneScenario::to_board() const {
    double x1 = 0, y1 = 0;
    for (const ShapeSpec& sh : shapes) {
        const Bbox bb = shape_bbox(*this, sh);
        x1 = std::max(x1, bb.x1);
        y1 = std::max(y1, bb.y1);
    }
    std::ostringstream os;
    os.precision(9);
    os << "# pgsi::verify scenario footprint\n";
    os << "# " << describe() << "\n";
    os << "board " << x1 << " " << y1 << "\n";
    os << "stackup sep " << shapes[0].z << " eps " << eps_r << " sheet "
       << sheet_resistance << "\n";
    for (const ShapeSpec& sh : shapes) {
        const Bbox bb = shape_bbox(*this, sh);
        os << "# shape z=" << sh.z << " bbox " << bb.x0 << " " << bb.y0 << " "
           << bb.x1 << " " << bb.y1 << "\n";
        if (sh.hole) {
            const double cell = shape_cell(*this, sh);
            os << "cutout " << bb.x0 + sh.hole->x0 * cell << " "
               << bb.y0 + sh.hole->y0 * cell << " "
               << bb.x0 + sh.hole->x1 * cell << " "
               << bb.y0 + sh.hole->y1 * cell << "\n";
        }
    }
    for (const PortSpec& p : ports) {
        const Bbox bb = shape_bbox(*this, shapes[p.shape]);
        os << "stitch " << bb.x0 + p.fx * bb.width() << " "
           << bb.y0 + p.fy * bb.height() << "\n";
    }
    return os.str();
}

namespace {

// Place `count` ports on the given shapes, retrying until all snap to
// distinct mesh nodes (gives up after a bounded number of attempts and
// returns whatever it has — duplicates are benign, just less informative).
void place_ports(PlaneScenario& s, Rng& rng, int count,
                 const std::vector<std::size_t>& on_shapes) {
    const RectMesh mesh = s.make_mesh();
    std::set<std::size_t> used;
    for (int k = 0; k < count; ++k) {
        const std::size_t shape = on_shapes[k % on_shapes.size()];
        PortSpec best{shape, 0.5, 0.5};
        for (int attempt = 0; attempt < 24; ++attempt) {
            PortSpec p{shape, rng.uniform(0.08, 0.92), rng.uniform(0.08, 0.92)};
            const Bbox bb = shape_bbox(s, s.shapes[shape]);
            const std::size_t node = mesh.nearest_node(
                {bb.x0 + p.fx * bb.width(), bb.y0 + p.fy * bb.height()}, shape);
            best = p;
            if (!used.count(node)) {
                used.insert(node);
                break;
            }
        }
        s.ports.push_back(best);
    }
}

ShapeSpec random_shape(Rng& rng, int min_n, int max_n) {
    ShapeSpec sh;
    sh.nx = rng.uniform_int(min_n, max_n);
    sh.ny = rng.uniform_int(min_n, max_n);
    sh.z = rng.uniform(0.2e-3, 0.9e-3);
    return sh;
}

} // namespace

PlaneScenario generate_plane(Rng& rng) {
    PlaneScenario s;
    s.pitch = rng.uniform(0.8e-3, 1.6e-3);
    s.sheet_resistance = rng.log_uniform(5e-4, 5e-3);
    s.eps_r = rng.uniform(2.2, 6.0);
    s.testing = rng.chance(0.15) ? Testing::Galerkin : Testing::PointMatching;

    // Multi-layer stacks get extra weight: they exercise the cross-layer
    // (z != z') interaction kernels that single-plane cases never touch.
    const double roll = rng.uniform();
    int n_ports = rng.uniform_int(2, 3);
    std::vector<std::size_t> port_shapes;

    if (roll < 0.17) {
        s.kind = "rectangle";
        ShapeSpec sh = random_shape(rng, 8, 14);
        // Keep the dielectric thin relative to the plate extent so the
        // analytic parallel-plate cavity comparison stays meaningful: the
        // BEM resolves fringing fields the cavity formula has no notion of,
        // and those grow with d/extent.
        const double min_ext = std::min(sh.nx, sh.ny) * s.pitch;
        sh.z = min_ext * rng.uniform(0.015, 0.04);
        s.shapes.push_back(sh);
        port_shapes = {0};
    } else if (roll < 0.31) {
        s.kind = "lshape";
        ShapeSpec sh = random_shape(rng, 8, 14);
        sh.lcut = CellRect{rng.uniform_int(sh.nx / 3, 2 * sh.nx / 3),
                           rng.uniform_int(sh.ny / 3, 2 * sh.ny / 3), sh.nx,
                           sh.ny};
        s.shapes.push_back(sh);
        port_shapes = {0};
    } else if (roll < 0.46) {
        s.kind = "holey";
        ShapeSpec sh = random_shape(rng, 8, 14);
        const int hx0 = rng.uniform_int(2, sh.nx - 4);
        const int hy0 = rng.uniform_int(2, sh.ny - 4);
        sh.hole = CellRect{hx0, hy0,
                           rng.uniform_int(hx0 + 1, std::min(hx0 + 4, sh.nx - 2)),
                           rng.uniform_int(hy0 + 1, std::min(hy0 + 4, sh.ny - 2))};
        s.shapes.push_back(sh);
        port_shapes = {0};
    } else if (roll < 0.60) {
        s.kind = "split";
        ShapeSpec a = random_shape(rng, 5, 10);
        ShapeSpec b = random_shape(rng, 5, 10);
        b.z = a.z; // complementary split planes share one height
        b.ox = a.nx + rng.uniform_int(1, 3);
        b.oy = rng.uniform_int(0, 2);
        s.shapes = {a, b};
        port_shapes = {0, 1};
        n_ports = std::max(n_ports, 2);
    } else if (roll < 0.85) {
        s.kind = "multilayer";
        const int layers = rng.uniform_int(2, 3);
        double z = rng.uniform(0.2e-3, 0.4e-3);
        for (int l = 0; l < layers; ++l) {
            ShapeSpec sh = random_shape(rng, 5, 9);
            sh.z = z;
            sh.ox = rng.uniform_int(0, 2);
            sh.oy = rng.uniform_int(0, 2);
            if (rng.chance(0.25) && sh.nx >= 7 && sh.ny >= 7)
                sh.hole = CellRect{2, 2, 3, 3};
            s.shapes.push_back(sh);
            z += rng.uniform(0.3e-3, 0.7e-3);
            port_shapes.push_back(static_cast<std::size_t>(l));
        }
        n_ports = std::max(n_ports, layers); // every layer gets a port
    } else {
        s.kind = "nonuniform";
        ShapeSpec a = random_shape(rng, 6, 10);
        ShapeSpec b = random_shape(rng, 5, 8);
        b.z = a.z;
        b.ox = a.nx + rng.uniform_int(2, 4);
        b.stretch = rng.uniform(0.82, 0.95); // incommensurate lattice
        s.shapes = {a, b};
        port_shapes = {0, 1};
        n_ports = std::max(n_ports, 2);
    }

    place_ports(s, rng, n_ports, port_shapes);
    return s;
}

NetlistScenario generate_netlist(Rng& rng) {
    NetlistScenario ns;
    const double t0 = 1e-9; // characteristic time scale
    ns.dt = t0 / 80;
    ns.tstop = 10 * t0;

    Netlist& nl = ns.netlist;
    const int n = rng.uniform_int(3, 6);
    std::vector<NodeId> nodes{nl.ground()};
    for (int k = 1; k <= n; ++k)
        nodes.push_back(nl.node("n" + std::to_string(k)));

    int nr = 0, nc = 0, nli = 0;
    std::vector<std::size_t> inductors;
    // Spanning tree of R/L edges: every node keeps a DC path to ground, so
    // the operating point is well posed without gmin leakage (which would
    // silently unbalance the energy bookkeeping).
    for (int k = 1; k <= n; ++k) {
        const NodeId parent = nodes[static_cast<std::size_t>(
            rng.uniform_int(0, k - 1))];
        if (rng.chance(0.55)) {
            nl.add_resistor("rt" + std::to_string(++nr), nodes[k], parent,
                            rng.log_uniform(1.0, 50.0));
        } else {
            inductors.push_back(nl.add_inductor(
                "lt" + std::to_string(++nli), nodes[k], parent,
                rng.log_uniform(0.5e-9, 20e-9)));
        }
    }
    // Cross edges add loops and reactive storage.
    const int extra = rng.uniform_int(2, 5);
    for (int e = 0; e < extra; ++e) {
        const NodeId a = rng.pick(nodes);
        NodeId b = rng.pick(nodes);
        if (a == b) b = nl.ground();
        if (a == b) continue;
        const double kind = rng.uniform();
        if (kind < 0.55)
            nl.add_capacitor("cx" + std::to_string(++nc), a, b,
                             rng.log_uniform(1e-12, 200e-12));
        else if (kind < 0.8)
            nl.add_resistor("rx" + std::to_string(++nr), a, b,
                            rng.log_uniform(2.0, 100.0));
        else
            inductors.push_back(nl.add_inductor("lx" + std::to_string(++nli), a,
                                                b,
                                                rng.log_uniform(0.5e-9, 20e-9)));
    }
    if (inductors.size() >= 2 && rng.chance(0.4)) {
        const std::size_t i1 = inductors[0];
        const std::size_t i2 = inductors[1];
        nl.add_mutual("kx1", nl.inductors()[i1].name, nl.inductors()[i2].name,
                      rng.uniform(0.1, 0.7));
    }

    // One excitation, zero at t = 0 so the run starts from a quiescent DC
    // point and all stored energies integrate up from zero.
    const NodeId drive = nodes[static_cast<std::size_t>(rng.uniform_int(1, n))];
    const double amp = rng.uniform(0.5, 2.0);
    Source src = rng.chance(0.5)
                     ? Source::pulse(0, amp, 0.5 * t0, t0 / 4, t0 / 4, 3 * t0,
                                     20 * t0)
                     : Source::sine(0, amp, rng.uniform(0.05, 0.4) / t0);
    if (rng.chance(0.5))
        nl.add_vsource("vdrv", drive, nl.ground(), src);
    else
        nl.add_isource("idrv", drive, nl.ground(), src);

    std::ostringstream os;
    os << "rlc n=" << n << " R=" << nr << " L=" << nli << " C=" << nc
       << " drive=" << nl.node_name(drive);
    ns.summary = os.str();
    return ns;
}

} // namespace pgsi::verify
