#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/shrink.hpp"

namespace pgsi::verify {

const std::vector<Suite>& all_suites() {
    static const std::vector<Suite> all = {Suite::Reciprocity, Suite::Passivity,
                                           Suite::Limits,      Suite::Backends,
                                           Suite::Energy,      Suite::Recovery};
    return all;
}

const char* suite_name(Suite s) {
    switch (s) {
        case Suite::Reciprocity: return "reciprocity";
        case Suite::Passivity: return "passivity";
        case Suite::Limits: return "limits";
        case Suite::Backends: return "backends";
        case Suite::Energy: return "energy";
        case Suite::Recovery: return "recovery";
    }
    return "?";
}

std::vector<Suite> parse_suites(const std::string& csv) {
    if (csv.empty() || csv == "all") return all_suites();
    std::vector<Suite> picked;
    std::istringstream is(csv);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty()) continue;
        bool found = false;
        for (const Suite s : all_suites())
            if (tok == suite_name(s)) {
                if (std::find(picked.begin(), picked.end(), s) == picked.end())
                    picked.push_back(s);
                found = true;
            }
        if (!found)
            throw InvalidArgument("unknown suite '" + tok +
                                  "' (try: all, reciprocity, passivity, "
                                  "limits, backends, energy, recovery)");
    }
    if (picked.empty()) throw InvalidArgument("empty suite selection");
    return picked;
}

namespace {

bool selected(const std::vector<Suite>& suites, const char* suite) {
    for (const Suite s : suites)
        if (std::string_view(suite_name(s)) == suite) return true;
    return false;
}

double ladder_tolerance(const ToleranceLadder& tol, const std::string& name) {
    if (name == "reciprocity") return tol.reciprocity;
    if (name == "passivity") return tol.passivity;
    if (name == "dc_capacitance") return tol.dc_capacitance;
    if (name == "dc_resistance") return tol.dc_resistance;
    if (name == "assembly_cache") return tol.assembly;
    if (name == "backend_iterative") return tol.backend_z;
    if (name == "sweep_recycle") return tol.backend_z;
    if (name == "backend_cavity") return tol.cavity;
    if (name == "energy_balance") return tol.energy;
    if (name == "fault_recovery") return tol.recovery;
    return 0;
}

// Stream ids for the independent generator streams of one iteration; plane
// and netlist draws never share a stream, so deselecting one suite family
// does not shift the scenarios of the other.
constexpr std::uint64_t kPlaneStream = 0;
constexpr std::uint64_t kNetlistStream = 1u << 20;

struct Recorder {
    std::vector<InvariantStats>& stats;
    std::vector<FailureRecord>& failures;
    const VerifyOptions& opt;

    InvariantStats& slot(const std::string& name, const char* suite) {
        for (InvariantStats& s : stats)
            if (s.invariant == name) return s;
        InvariantStats s;
        s.invariant = name;
        s.suite = suite;
        s.tolerance = ladder_tolerance(opt.tol, name);
        stats.push_back(s);
        return stats.back();
    }

    // Records the check; returns the failure record to fill in further (or
    // nullptr when the check passed / was skipped).
    FailureRecord* record(const CheckResult& r, const char* suite,
                          int iteration, const std::string& scenario) {
        InvariantStats& s = slot(r.invariant, suite);
        if (r.skipped) {
            ++s.skips;
            obs::counter("verify." + r.invariant + ".skips").add(1);
            return nullptr;
        }
        ++s.checks;
        s.worst_error = std::max(s.worst_error, r.error);
        obs::counter("verify." + r.invariant + ".checks").add(1);
        if (r.pass) return nullptr;
        ++s.failures;
        obs::counter("verify." + r.invariant + ".failures").add(1);
        FailureRecord fr;
        fr.invariant = r.invariant;
        fr.suite = suite;
        fr.seed = opt.seed;
        fr.iteration = iteration;
        fr.error = r.error;
        fr.tolerance = r.tolerance;
        fr.detail = r.detail;
        fr.scenario = scenario;
        failures.push_back(std::move(fr));
        return &failures.back();
    }
};

// Solver counters worth tracking per campaign. These are process-wide
// cumulative atomics; the tracker below turns them into campaign-scoped
// deltas so manifests stay comparable run-to-run.
constexpr const char* kTrackedCounters[] = {
    "gmres.solves",        "gmres.iterations",
    "gmres.matvecs",       "gmres.restarts",
    "lu.factorizations",   "lu.solves",
    "transient.step_rejections", "transient.timestep_cuts",
    "robust.recoveries",   "robust.faults_injected",
};

class CounterTracker {
public:
    CounterTracker() {
        for (const char* name : kTrackedCounters) {
            counters_.push_back(&obs::counter(name));
            CounterStats s;
            s.name = name;
            stats_.push_back(std::move(s));
            last_.push_back(counters_.back()->value());
            start_.push_back(last_.back());
        }
    }

    /// Fold the deltas since the previous call into the per-iteration worst.
    void end_iteration() {
        for (std::size_t i = 0; i < counters_.size(); ++i) {
            const std::uint64_t now = counters_[i]->value();
            stats_[i].worst_iteration =
                std::max(stats_[i].worst_iteration, now - last_[i]);
            last_[i] = now;
        }
    }

    std::vector<CounterStats> finish() {
        for (std::size_t i = 0; i < counters_.size(); ++i)
            stats_[i].total = counters_[i]->value() - start_[i];
        return std::move(stats_);
    }

private:
    std::vector<obs::Counter*> counters_;
    std::vector<CounterStats> stats_;
    std::vector<std::uint64_t> start_, last_;
};

std::string json_num(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    const std::string s = os.str();
    // JSON has no inf/nan literals.
    if (s.find("inf") != std::string::npos) return "1e308";
    if (s.find("nan") != std::string::npos) return "null";
    return s;
}

} // namespace

CampaignResult run_campaign(const VerifyOptions& opt) {
    PGSI_REQUIRE(opt.iterations > 0, "run_campaign: iterations must be > 0");
    const std::vector<Suite> suites =
        opt.suites.empty() ? all_suites() : opt.suites;

    CampaignResult result;
    result.seed = opt.seed;
    result.iterations = opt.iterations;
    for (const Suite s : suites) result.suites.push_back(suite_name(s));

    const bool want_plane = selected(suites, "reciprocity") ||
                            selected(suites, "passivity") ||
                            selected(suites, "limits") ||
                            selected(suites, "backends");
    const bool want_energy = selected(suites, "energy");
    const bool want_recovery = selected(suites, "recovery");

    Recorder rec{result.invariants, result.failures, opt};
    // Pre-register every selected invariant so zero-check campaigns still
    // render complete manifests.
    for (const PlaneInvariant& inv : plane_invariants())
        if (selected(suites, inv.suite)) rec.slot(inv.name, inv.suite);
    if (want_energy) rec.slot("energy_balance", "energy");
    if (want_recovery) rec.slot("fault_recovery", "recovery");

    PGSI_TRACE_SCOPE("verify.campaign");
    CounterTracker tracker;
    for (int iter = 0; iter < opt.iterations; ++iter) {
        PGSI_TRACE_SCOPE("verify.iteration");
        obs::counter("verify.iterations").add(1);

        if (want_plane) {
            Rng rng = Rng::stream(opt.seed, kPlaneStream + iter);
            PlaneScenario scenario = generate_plane(rng);
            scenario.seed = opt.seed;
            const PlaneBem bem = scenario.make_bem(AssemblyMode::Auto);
            const DirectSolver direct(bem, scenario.surface_impedance());
            const std::vector<std::size_t> ports =
                scenario.port_nodes(bem.mesh());
            const InvariantContext ctx{
                scenario, bem, direct, ports,
                scenario.est_first_resonance(), opt.tol};
            for (const PlaneInvariant& inv : plane_invariants()) {
                if (!selected(suites, inv.suite)) continue;
                PGSI_TRACE_SCOPE(inv.name);
                const CheckResult r = inv.fn(ctx);
                FailureRecord* fr =
                    rec.record(r, inv.suite, iter, scenario.describe());
                if (fr != nullptr && opt.shrink) {
                    const std::string name = inv.name;
                    const ToleranceLadder tol = opt.tol;
                    const ShrinkResult sr = shrink_scenario(
                        scenario, [&](const PlaneScenario& cand) {
                            const CheckResult c =
                                run_plane_invariant(cand, name, tol);
                            return !c.pass && !c.skipped;
                        });
                    fr->shrunk_scenario = sr.scenario.describe();
                    std::ostringstream tag;
                    tag << inv.name << "_seed" << opt.seed << "_iter" << iter;
                    CheckResult shrunk_r =
                        run_plane_invariant(sr.scenario, name, tol);
                    if (shrunk_r.pass) shrunk_r = r; // paranoia: keep a failure
                    const ReproPaths paths = write_repro(
                        opt.failure_dir, tag.str(), sr.scenario, shrunk_r);
                    fr->repro_cpp = paths.cpp_path;
                    fr->repro_board = paths.board_path;
                }
            }
        }

        if (want_energy || want_recovery) {
            Rng rng = Rng::stream(opt.seed, kNetlistStream + iter);
            NetlistScenario ns = generate_netlist(rng);
            ns.seed = opt.seed;
            if (want_energy) {
                PGSI_TRACE_SCOPE("energy_balance");
                const CheckResult r = check_energy_balance(
                    ns.netlist, ns.dt, ns.tstop, opt.tol.energy);
                rec.record(r, "energy", iter, ns.summary);
            }
            if (want_recovery) {
                PGSI_TRACE_SCOPE("fault_recovery");
                const CheckResult r = check_fault_recovery(
                    ns.netlist, ns.dt, ns.tstop, opt.tol.recovery);
                rec.record(r, "recovery", iter, ns.summary);
            }
        }
        tracker.end_iteration();
    }
    result.metrics = tracker.finish();
    return result;
}

std::string manifest_json(const CampaignResult& result) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << result.seed << ",\n";
    os << "  \"iterations\": " << result.iterations << ",\n";
    os << "  \"suites\": [";
    for (std::size_t i = 0; i < result.suites.size(); ++i)
        os << (i ? ", " : "") << "\"" << result.suites[i] << "\"";
    os << "],\n";
    os << "  \"invariants\": [\n";
    for (std::size_t i = 0; i < result.invariants.size(); ++i) {
        const InvariantStats& s = result.invariants[i];
        os << "    {\"invariant\": \"" << s.invariant << "\", \"suite\": \""
           << s.suite << "\", \"checks\": " << s.checks
           << ", \"skips\": " << s.skips << ", \"failures\": " << s.failures
           << ", \"tolerance\": " << json_num(s.tolerance)
           << ", \"worst_error\": " << json_num(s.worst_error) << "}"
           << (i + 1 < result.invariants.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"metrics\": [\n";
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
        const CounterStats& m = result.metrics[i];
        os << "    {\"name\": \"" << m.name << "\", \"total\": " << m.total
           << ", \"worst_iteration\": " << m.worst_iteration << "}"
           << (i + 1 < result.metrics.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"failures\": [\n";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
        const FailureRecord& f = result.failures[i];
        os << "    {\"invariant\": \"" << f.invariant << "\", \"suite\": \""
           << f.suite << "\", \"seed\": " << f.seed
           << ", \"iteration\": " << f.iteration
           << ", \"error\": " << json_num(f.error)
           << ", \"tolerance\": " << json_num(f.tolerance) << ",\n"
           << "     \"detail\": \"" << obs::json_escape(f.detail) << "\",\n"
           << "     \"scenario\": \"" << obs::json_escape(f.scenario) << "\",\n"
           << "     \"shrunk_scenario\": \""
           << obs::json_escape(f.shrunk_scenario) << "\",\n"
           << "     \"repro_cpp\": \"" << obs::json_escape(f.repro_cpp)
           << "\", \"repro_board\": \"" << obs::json_escape(f.repro_board)
           << "\"}" << (i + 1 < result.failures.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace pgsi::verify
