// Seeded scenario generators for the verification harness: plane geometries
// with port placements, and small RLC/source netlists.
//
// A scenario is a *description*, not a solver object: a handful of integers
// and doubles from which the mesh, the BEM operator and the solvers can be
// rebuilt deterministically. That makes scenarios cheap to copy, easy to
// mutate (the shrinker edits cell counts and drops features), and trivially
// serializable into a repro snippet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "em/bem_plane.hpp"
#include "em/surface_impedance.hpp"
#include "verify/rng.hpp"

namespace pgsi::verify {

/// Axis-aligned rectangle in integer cell coordinates of the owning shape
/// (cell (0,0) is the shape's lower-left corner; x1/y1 are exclusive).
struct CellRect {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
};

/// One conductor shape of a plane scenario, described on the cell lattice.
struct ShapeSpec {
    int nx = 8, ny = 8;  ///< extent in cells
    int ox = 0, oy = 0;  ///< lattice offset of the lower-left corner, in cells
    double z = 0.4e-3;   ///< height above the reference plane [m]
    std::optional<CellRect> hole; ///< interior antipad cutout
    std::optional<CellRect> lcut; ///< upper-right corner cut -> L-shape
    /// Cell-size multiplier. 1.0 keeps the shape on the shared lattice; any
    /// other value makes its cells incommensurate with the base pitch, which
    /// defeats the displacement table and forces the dense assembly path.
    double stretch = 1.0;
};

/// A port: observation node nearest to a fractional position in the bounding
/// box of one shape.
struct PortSpec {
    std::size_t shape = 0;
    double fx = 0.5, fy = 0.5;
};

/// A generated (or shrunk) plane scenario.
struct PlaneScenario {
    std::uint64_t seed = 0;  ///< generator stream that produced it
    std::string kind = "rectangle";
    double pitch = 1e-3;             ///< base lattice pitch [m]
    double sheet_resistance = 2e-3;  ///< per-plane DC sheet resistance [ohm/sq]
    double eps_r = 4.2;
    Testing testing = Testing::PointMatching;
    std::vector<ShapeSpec> shapes;
    std::vector<PortSpec> ports;

    /// Throws InvalidArgument when the description is not meshable (empty,
    /// degenerate holes, overlapping same-height shapes, dangling ports).
    void validate() const;

    RectMesh make_mesh() const;
    PlaneBem make_bem(AssemblyMode mode = AssemblyMode::Auto) const;
    SurfaceImpedance surface_impedance() const;

    /// Port mesh nodes in port order (may repeat if two ports snap to the
    /// same cell; the generator avoids that, the shrinker may not).
    std::vector<std::size_t> port_nodes(const RectMesh& mesh) const;

    /// Number of meshed charge cells.
    std::size_t cell_count() const;
    /// Number of distinct conductor heights.
    std::size_t layer_count() const;
    /// True when the scenario is a single full on-lattice rectangle — the
    /// geometry the analytic cavity model can cross-check.
    bool separable() const;
    /// Estimated first cavity resonance of the overall extent [Hz]; the
    /// quasi-static invariant checks pick their frequencies relative to it.
    double est_first_resonance() const;

    std::string describe() const;
    /// Self-contained gtest snippet reproducing one invariant failure.
    std::string to_cpp(const std::string& test_name,
                       const std::string& invariant) const;
    /// Board-file rendering of the scenario footprint (parses with
    /// parse_board_file; multi-layer detail is carried in comments).
    std::string to_board() const;
};

/// Draw a random plane scenario from `rng`.
PlaneScenario generate_plane(Rng& rng);

/// A generated transient-circuit scenario: a small random RLC network with a
/// guaranteed DC path from every node to ground, plus pulse/sine sources.
struct NetlistScenario {
    std::uint64_t seed = 0;
    double dt = 0;
    double tstop = 0;
    std::string summary;
    Netlist netlist;
};

/// Draw a random netlist scenario from `rng`.
NetlistScenario generate_netlist(Rng& rng);

} // namespace pgsi::verify
