// Registry of physics-invariant checkers for the verification harness.
//
// Each invariant is a property any correct solver output must satisfy —
// reciprocity and passivity of the port impedance matrix, the DC capacitive
// and resistive asymptotes, transient energy balance, and agreement between
// the independent solver backends (direct LU, cached assembly, FFT/GMRES,
// analytic cavity). Tolerances live in one calibrated ladder so a future
// change that degrades agreement shows up as drift against the committed
// campaign manifest, the same way BENCH_scaling.json tracks perf drift.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "em/bem_plane.hpp"
#include "em/solver.hpp"
#include "verify/scenario.hpp"

namespace pgsi::verify {

/// Outcome of one invariant check.
struct CheckResult {
    std::string invariant;
    bool pass = true;
    bool skipped = false;  ///< invariant does not apply to this scenario
    double error = 0;      ///< measured metric (definition per invariant)
    double tolerance = 0;  ///< bound the metric was held to
    std::string detail;    ///< human-readable context / failure description
};

/// Calibrated tolerance ladder of the cross-checks, loosest physics first.
/// Values follow the conventions already proven in tests/ and bench/golden:
/// bitwise-class agreement for the displacement cache, solver-residual-class
/// agreement for the iterative backend, modeling-class agreement vs cavity.
struct ToleranceLadder {
    double reciprocity = 1e-9;    ///< rel asymmetry of Z (direct backend)
    double passivity = 1e-10;     ///< -eigmin(Herm Z)/max|Z| floor
    double dc_capacitance = 0.02; ///< rel error of imag Zii vs -1/(w Ceff)
    double dc_resistance = 0.02;  ///< rel error of loop R vs DC Laplacian
    double assembly = 1e-11;      ///< cached vs direct P/L fill, rel
    double backend_z = 1e-6;      ///< direct vs iterative Z, rel
    double cavity = 0.25;         ///< BEM vs analytic cavity |Z|, rel
    double energy = 0.03;         ///< transient energy-balance residual, rel
    double recovery = 0.05;       ///< faulted vs golden waveform, rel of peak
};

// --- matrix-level checkers (pure functions, unit-testable) -----------------

/// Z must equal its transpose: error = max |Zij - Zji| / max |Z|.
CheckResult check_reciprocity(const MatrixC& z, double tol);

/// The Hermitian part of Z must be positive semidefinite:
/// error = max(0, -eigmin((Z + Z^H)/2)) / max |Z|.
CheckResult check_passivity(const MatrixC& z, double tol);

/// Entrywise relative difference, scaled by max |a|.
double relative_diff(const MatrixC& a, const MatrixC& b);
double relative_diff(const MatrixD& a, const MatrixD& b);

// --- reduction helpers for the DC limits -----------------------------------

/// Effective capacitance seen from one mesh component against the reference
/// plane with every other component floating (zero net charge): the Schur
/// complement of the component-block-summed Maxwell capacitance matrix.
double effective_capacitance(const PlaneBem& bem, std::size_t component);

/// DC spreading resistance between two nodes of one component, from the
/// sheet-resistance conductance Laplacian.
double dc_path_resistance(const PlaneBem& bem, std::size_t n1, std::size_t n2);

// --- netlist invariants -----------------------------------------------------

/// Transient energy balance: absorbed source energy + resistive dissipation
/// + change of stored (C and L, incl. mutual) energy must vanish.
CheckResult check_energy_balance(const Netlist& nl, double dt, double tstop,
                                 double tol);

/// Recovery equivalence: a run with an injected transient.newton fault must
/// reproduce the unfaulted golden waveforms within tolerance (the PR 4
/// recovery ladder may not change the answer, only the path to it).
CheckResult check_fault_recovery(const Netlist& nl, double dt, double tstop,
                                 double tol);

// --- plane-invariant registry ----------------------------------------------

/// Everything a plane invariant needs, built once per scenario.
struct InvariantContext {
    const PlaneScenario& scenario;
    const PlaneBem& bem;  ///< AssemblyMode::Auto build
    const DirectSolver& direct;
    const std::vector<std::size_t>& ports;
    double f10;  ///< estimated first resonance
    const ToleranceLadder& tol;
};

/// One registered plane invariant.
struct PlaneInvariant {
    const char* name;   ///< stable id ("reciprocity", "backend_cavity", ...)
    const char* suite;  ///< suite tag ("reciprocity", "backends", ...)
    CheckResult (*fn)(const InvariantContext&);
};

/// The registry, in evaluation order.
const std::vector<PlaneInvariant>& plane_invariants();

/// Rebuild the context for `scenario` and run the named invariant (the
/// shrinker's predicate and emitted repro snippets enter here).
/// Throws InvalidArgument for an unknown invariant name.
CheckResult run_plane_invariant(const PlaneScenario& scenario,
                                const std::string& invariant,
                                const ToleranceLadder& tol);

} // namespace pgsi::verify
