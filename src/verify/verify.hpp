// Campaign runner of the property-based verification harness.
//
// A campaign is `iterations` independent scenario draws from a seeded stream;
// each iteration generates a plane scenario and/or a netlist scenario and
// runs every invariant of the selected suites against it. Failures are
// optionally shrunk to a minimal scenario and emitted as tests/-ready repro
// files. The whole run is wired into pgsi::obs: per-invariant counters and a
// trace span per iteration make long fuzz campaigns observable with the same
// --profile / --trace-json machinery as every other tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/invariants.hpp"
#include "verify/scenario.hpp"

namespace pgsi::verify {

/// Check suites, selectable from the CLI by name.
enum class Suite {
    Reciprocity,  ///< Z-matrix symmetry
    Passivity,    ///< positive-real port impedance
    Limits,       ///< DC capacitive / resistive asymptotes
    Backends,     ///< cached assembly, iterative solver, cavity cross-checks
    Energy,       ///< transient energy balance
    Recovery      ///< fault-injected runs reproduce the golden
};

/// All suites, in canonical order.
const std::vector<Suite>& all_suites();
const char* suite_name(Suite s);
/// Parse "all" or a comma-separated subset ("reciprocity,backends").
/// Throws InvalidArgument on an unknown name.
std::vector<Suite> parse_suites(const std::string& csv);

struct VerifyOptions {
    std::uint64_t seed = 1;
    int iterations = 100;
    std::vector<Suite> suites;  ///< empty = all
    bool shrink = false;        ///< minimize failures and emit repro files
    std::string failure_dir = "verify_failures";
    ToleranceLadder tol;
};

/// Aggregate per-invariant statistics of a campaign.
struct InvariantStats {
    std::string invariant;
    std::string suite;
    std::size_t checks = 0;    ///< runs that applied (skips excluded)
    std::size_t skips = 0;
    std::size_t failures = 0;
    double tolerance = 0;
    double worst_error = 0;    ///< largest observed metric
};

/// One recorded failure.
struct FailureRecord {
    std::string invariant;
    std::string suite;
    std::uint64_t seed = 0;
    int iteration = 0;
    double error = 0;
    double tolerance = 0;
    std::string detail;
    std::string scenario;         ///< describe() of the failing scenario
    std::string shrunk_scenario;  ///< describe() after shrinking (if enabled)
    std::string repro_cpp;        ///< emitted file paths (if enabled)
    std::string repro_board;
};

/// Campaign-scoped view of one process-wide solver counter. The campaign
/// snapshots each tracked counter when it starts and after every iteration,
/// so the manifest records the work *this* campaign did — not whatever the
/// process accumulated before it (a tool-level --profile, an earlier
/// campaign in the same test binary) — plus the heaviest single iteration.
struct CounterStats {
    std::string name;            ///< obs counter name ("gmres.iterations")
    std::uint64_t total = 0;     ///< delta across the whole campaign
    std::uint64_t worst_iteration = 0; ///< largest single-iteration delta
};

struct CampaignResult {
    std::uint64_t seed = 1;
    int iterations = 0;
    std::vector<std::string> suites;
    std::vector<InvariantStats> invariants;
    std::vector<FailureRecord> failures;
    std::vector<CounterStats> metrics; ///< campaign-scoped solver counters

    bool ok() const { return failures.empty(); }
};

/// Run a campaign. Deterministic for fixed options: the result (including
/// the manifest rendering) depends only on seed/iterations/suites/tol.
CampaignResult run_campaign(const VerifyOptions& opt);

/// JSON manifest of a campaign (seeds, suites, per-invariant worst errors) —
/// the drift-tracking artifact committed at bench/golden/verify_manifest.json.
std::string manifest_json(const CampaignResult& result);

} // namespace pgsi::verify
