#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "circuit/transient.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/robust.hpp"
#include "em/cavity_model.hpp"
#include "em/iterative_solver.hpp"
#include "em/surface_impedance.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lu.hpp"
#include "serve/engine.hpp"
#include "si/board_file.hpp"

namespace pgsi::verify {

namespace {

std::string fmt(double v) {
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
}

bool all_finite(const MatrixC& z) {
    for (std::size_t i = 0; i < z.rows(); ++i)
        for (std::size_t j = 0; j < z.cols(); ++j)
            if (!std::isfinite(z(i, j).real()) || !std::isfinite(z(i, j).imag()))
                return false;
    return true;
}

CheckResult non_finite(const std::string& name, double freq) {
    CheckResult r;
    r.invariant = name;
    r.pass = false;
    r.error = std::numeric_limits<double>::infinity();
    r.detail = "non-finite impedance entry at f=" + fmt(freq);
    return r;
}

CheckResult skipped(const char* name, const std::string& why) {
    CheckResult r;
    r.invariant = name;
    r.skipped = true;
    r.detail = why;
    return r;
}

} // namespace

CheckResult check_reciprocity(const MatrixC& z, double tol) {
    CheckResult r;
    r.invariant = "reciprocity";
    r.tolerance = tol;
    const double scale = std::max(z.max_abs(), 1e-300);
    double worst = 0;
    for (std::size_t i = 0; i < z.rows(); ++i)
        for (std::size_t j = i + 1; j < z.cols(); ++j)
            worst = std::max(worst, std::abs(z(i, j) - z(j, i)) / scale);
    r.error = worst;
    r.pass = worst <= tol;
    if (!r.pass)
        r.detail = "max rel |Zij - Zji| = " + fmt(worst) + " > " + fmt(tol);
    return r;
}

CheckResult check_passivity(const MatrixC& z, double tol) {
    CheckResult r;
    r.invariant = "passivity";
    r.tolerance = tol;
    const std::size_t n = z.rows();
    // Hermitian part H = (Z + Z^H)/2 = A + iB with A = A^T, B = -B^T. The
    // real symmetric embedding [[A, -B], [B, A]] shares H's spectrum (each
    // eigenvalue doubled), so the Jacobi solver handles the complex case.
    MatrixD s(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const Complex h = 0.5 * (z(i, j) + std::conj(z(j, i)));
            s(i, j) = h.real();
            s(n + i, n + j) = h.real();
            s(i, n + j) = -h.imag();
            s(n + i, j) = h.imag();
        }
    const double scale = std::max(z.max_abs(), 1e-300);
    const SymmetricEigen eig = eigen_symmetric(s);
    const double eigmin = eig.values.front();
    r.error = std::max(0.0, -eigmin) / scale;
    r.pass = r.error <= tol;
    if (!r.pass)
        r.detail = "Hermitian part indefinite: eigmin/max|Z| = -" +
                   fmt(r.error) + " < -" + fmt(tol);
    return r;
}

double relative_diff(const MatrixC& a, const MatrixC& b) {
    PGSI_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "relative_diff: shape mismatch");
    const double scale = std::max(a.max_abs(), 1e-300);
    double worst = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            worst = std::max(worst, std::abs(a(i, j) - b(i, j)) / scale);
    return worst;
}

double relative_diff(const MatrixD& a, const MatrixD& b) {
    PGSI_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "relative_diff: shape mismatch");
    const double scale = std::max(a.max_abs(), 1e-300);
    double worst = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            worst = std::max(worst, std::abs(a(i, j) - b(i, j)) / scale);
    return worst;
}

double effective_capacitance(const PlaneBem& bem, std::size_t component) {
    const MatrixD& c = bem.maxwell_capacitance();
    const std::vector<std::size_t>& comp = bem.mesh().component_of();
    const std::size_t k = bem.mesh().component_count();
    PGSI_REQUIRE(component < k, "effective_capacitance: bad component");
    // Block-summed Maxwell capacitance: chat(p, q) = sum_{i in p, j in q} Cij
    // relates component net charges to (uniform) component potentials.
    MatrixD chat(k, k);
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j)
            chat(comp[i], comp[j]) += c(i, j);
    if (k == 1) return chat(0, 0);
    // Other components float (zero net charge): eliminate them by the Schur
    // complement of chat over the driven component.
    const std::size_t m = k - 1;
    MatrixD cbb(m, m);
    VectorD cba(m);
    std::size_t r = 0;
    for (std::size_t p = 0; p < k; ++p) {
        if (p == component) continue;
        std::size_t cidx = 0;
        for (std::size_t q = 0; q < k; ++q) {
            if (q == component) continue;
            cbb(r, cidx++) = chat(p, q);
        }
        cba[r++] = chat(p, component);
    }
    const VectorD x = Lu<double>(cbb).solve(cba);
    double ceff = chat(component, component);
    for (std::size_t p = 0; p < m; ++p) ceff -= cba[p] * x[p];
    return ceff;
}

double dc_path_resistance(const PlaneBem& bem, std::size_t n1, std::size_t n2) {
    PGSI_REQUIRE(n1 != n2, "dc_path_resistance: identical nodes");
    const std::vector<std::size_t>& comp = bem.mesh().component_of();
    PGSI_REQUIRE(comp[n1] == comp[n2],
                 "dc_path_resistance: nodes in different components");
    const MatrixD& g = bem.dc_conductance();
    // Reduced Laplacian over the component, grounding n2.
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < g.rows(); ++i)
        if (comp[i] == comp[n1] && i != n2) keep.push_back(i);
    MatrixD gr(keep.size(), keep.size());
    VectorD rhs(keep.size(), 0.0);
    std::size_t row1 = keep.size();
    for (std::size_t a = 0; a < keep.size(); ++a) {
        if (keep[a] == n1) {
            row1 = a;
            rhs[a] = 1.0;
        }
        for (std::size_t b = 0; b < keep.size(); ++b) gr(a, b) = g(keep[a], keep[b]);
    }
    PGSI_REQUIRE(row1 < keep.size(), "dc_path_resistance: n1 not in component");
    const VectorD v = Lu<double>(gr).solve(rhs);
    return v[row1];
}

// --- plane invariants -------------------------------------------------------

namespace {

CheckResult inv_reciprocity(const InvariantContext& ctx) {
    if (ctx.ports.size() < 2)
        return skipped("reciprocity", "needs >= 2 ports");
    CheckResult r;
    r.invariant = "reciprocity";
    r.tolerance = ctx.tol.reciprocity;
    // Quasi-static BEM is a reciprocal RLC network at every frequency; the
    // high point (above first resonance) stresses the inductive terms where
    // the PR 3 cross-layer z-parity bug lived.
    for (const double f : {0.35 * ctx.f10, 2.5 * ctx.f10}) {
        const MatrixC z = ctx.direct.port_impedance(f, ctx.ports);
        if (!all_finite(z)) return non_finite("reciprocity", f);
        const CheckResult at = check_reciprocity(z, ctx.tol.reciprocity);
        if (at.error > r.error) {
            r.error = at.error;
            if (!at.pass)
                r.detail = at.detail + " at f=" + fmt(f);
        }
        r.pass = r.pass && at.pass;
    }
    return r;
}

CheckResult inv_passivity(const InvariantContext& ctx) {
    CheckResult r;
    r.invariant = "passivity";
    r.tolerance = ctx.tol.passivity;
    for (const double f : {0.01 * ctx.f10, 0.35 * ctx.f10, 2.5 * ctx.f10}) {
        const MatrixC z = ctx.direct.port_impedance(f, ctx.ports);
        if (!all_finite(z)) return non_finite("passivity", f);
        const CheckResult at = check_passivity(z, ctx.tol.passivity);
        if (at.error > r.error) {
            r.error = at.error;
            if (!at.pass)
                r.detail = at.detail + " at f=" + fmt(f);
        }
        r.pass = r.pass && at.pass;
    }
    return r;
}

CheckResult inv_dc_capacitance(const InvariantContext& ctx) {
    CheckResult r;
    r.invariant = "dc_capacitance";
    r.tolerance = ctx.tol.dc_capacitance;
    const double f = 1e-3 * ctx.f10;
    const double w = 2 * pi * f;
    const MatrixC z = ctx.direct.port_impedance(f, ctx.ports);
    if (!all_finite(z)) return non_finite("dc_capacitance", f);
    const std::vector<std::size_t>& comp = ctx.bem.mesh().component_of();
    for (std::size_t p = 0; p < ctx.ports.size(); ++p) {
        const double ceff = effective_capacitance(ctx.bem, comp[ctx.ports[p]]);
        const double expect = -1.0 / (w * ceff);
        const double err = std::abs(z(p, p).imag() - expect) / std::abs(expect);
        if (err > r.error) {
            r.error = err;
            if (err > r.tolerance)
                r.detail = "port " + std::to_string(p) + ": imag Zii=" +
                           fmt(z(p, p).imag()) + " vs -1/(wC)=" + fmt(expect);
        }
    }
    r.pass = r.error <= r.tolerance;
    return r;
}

CheckResult inv_dc_resistance(const InvariantContext& ctx) {
    const std::vector<std::size_t>& comp = ctx.bem.mesh().component_of();
    std::size_t pi_ = ctx.ports.size(), pj_ = ctx.ports.size();
    for (std::size_t i = 0; i < ctx.ports.size() && pi_ == ctx.ports.size(); ++i)
        for (std::size_t j = i + 1; j < ctx.ports.size(); ++j)
            if (ctx.ports[i] != ctx.ports[j] &&
                comp[ctx.ports[i]] == comp[ctx.ports[j]]) {
                pi_ = i;
                pj_ = j;
                break;
            }
    if (pi_ == ctx.ports.size())
        return skipped("dc_resistance", "no two ports share a component");
    CheckResult r;
    r.invariant = "dc_resistance";
    r.tolerance = ctx.tol.dc_resistance;
    // The DC limit needs omega*L << Rs, or the AC current distribution no
    // longer matches the DC one and Re(Z_loop) sits above the Laplacian
    // resistance. The per-square plane inductance is ~mu0*d, so pick the
    // frequency from the Rs/L corner rather than from f10.
    double zmax = 0;
    for (const ShapeSpec& sh : ctx.scenario.shapes) zmax = std::max(zmax, sh.z);
    const double f_corner =
        ctx.scenario.sheet_resistance / (2 * pi * mu0 * zmax);
    const double f = std::min(1e-3 * ctx.f10, 1e-2 * f_corner);
    const MatrixC z = ctx.direct.port_impedance(f, ctx.ports);
    if (!all_finite(z)) return non_finite("dc_resistance", f);
    const double r_meas =
        (z(pi_, pi_) - z(pi_, pj_) - z(pj_, pi_) + z(pj_, pj_)).real();
    const double r_dc =
        dc_path_resistance(ctx.bem, ctx.ports[pi_], ctx.ports[pj_]);
    r.error = std::abs(r_meas - r_dc) / std::max(r_dc, 1e-300);
    r.pass = r.error <= r.tolerance;
    if (!r.pass)
        r.detail = "loop R=" + fmt(r_meas) + " vs Laplacian R=" + fmt(r_dc);
    return r;
}

CheckResult inv_assembly_cache(const InvariantContext& ctx) {
    if (!ctx.bem.uniform_lattice())
        return skipped("assembly_cache", "mesh is not on a uniform lattice");
    CheckResult r;
    r.invariant = "assembly_cache";
    r.tolerance = ctx.tol.assembly;
    const PlaneBem direct = ctx.scenario.make_bem(AssemblyMode::Direct);
    const PlaneBem cached = ctx.scenario.make_bem(AssemblyMode::Cached);
    const double dp =
        relative_diff(direct.potential_matrix(), cached.potential_matrix());
    const double dl =
        relative_diff(direct.inductance_matrix(), cached.inductance_matrix());
    r.error = std::max(dp, dl);
    r.pass = r.error <= r.tolerance;
    if (!r.pass)
        r.detail = "cached assembly drifted: P rel=" + fmt(dp) +
                   " L rel=" + fmt(dl);
    return r;
}

CheckResult inv_backend_iterative(const InvariantContext& ctx) {
    if (!ctx.bem.uniform_lattice())
        return skipped("backend_iterative", "mesh is not on a uniform lattice");
    CheckResult r;
    r.invariant = "backend_iterative";
    r.tolerance = ctx.tol.backend_z;
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    const std::unique_ptr<PlaneSolver> iter =
        make_solver(ctx.bem, ctx.scenario.surface_impedance(), opt);
    for (const double f : {0.35 * ctx.f10, 0.9 * ctx.f10}) {
        const MatrixC zd = ctx.direct.port_impedance(f, ctx.ports);
        const MatrixC zi = iter->port_impedance(f, ctx.ports);
        if (!all_finite(zd) || !all_finite(zi))
            return non_finite("backend_iterative", f);
        const double err = relative_diff(zd, zi);
        if (err > r.error) {
            r.error = err;
            if (err > r.tolerance)
                r.detail = "direct vs iterative rel=" + fmt(err) +
                           " at f=" + fmt(f);
        }
    }
    r.pass = r.error <= r.tolerance;
    return r;
}

// Multi-point sweep through the sweep engine (block solves, warm starts,
// recycled subspace): the engine's reuse machinery must not move the answer.
// Every point of an engine sweep has to match an independent cold direct
// solve to the backend tolerance, and the engine has to actually engage
// (warm-started points, sequential sweep accounting) — a silently-cold sweep
// would pass equivalence while testing nothing.
CheckResult inv_sweep_recycle(const InvariantContext& ctx) {
    if (!ctx.bem.uniform_lattice())
        return skipped("sweep_recycle", "mesh is not on a uniform lattice");
    CheckResult r;
    r.invariant = "sweep_recycle";
    r.tolerance = ctx.tol.backend_z;
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    const IterativeSolver iter(ctx.bem, ctx.scenario.surface_impedance(), opt);
    const VectorD freqs{0.25 * ctx.f10, 0.45 * ctx.f10, 0.65 * ctx.f10,
                        0.85 * ctx.f10};
    const std::vector<MatrixC> zi = iter.sweep_impedance(freqs, ctx.ports);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const MatrixC zd = ctx.direct.port_impedance(freqs[i], ctx.ports);
        if (!all_finite(zd) || !all_finite(zi[i]))
            return non_finite("sweep_recycle", freqs[i]);
        const double err = relative_diff(zd, zi[i]);
        if (err > r.error) {
            r.error = err;
            if (err > r.tolerance)
                r.detail = "direct vs engine sweep rel=" + fmt(err) +
                           " at f=" + fmt(freqs[i]);
        }
    }
    const IterativeSolverStats& st = iter.stats();
    if (st.sweep_points != freqs.size() || st.warm_starts == 0) {
        r.pass = false;
        r.error = std::max(r.error, 1.0);
        r.detail = "sweep engine did not engage: sweep_points=" +
                   std::to_string(st.sweep_points) +
                   " warm_starts=" + std::to_string(st.warm_starts);
        return r;
    }
    r.pass = r.error <= r.tolerance;
    return r;
}

CheckResult inv_backend_cavity(const InvariantContext& ctx) {
    if (!ctx.scenario.separable())
        return skipped("backend_cavity", "not a single full rectangle");
    {
        const ShapeSpec& sh0 = ctx.scenario.shapes[0];
        const double min_ext =
            std::min(sh0.nx, sh0.ny) * ctx.scenario.pitch;
        if (sh0.z > 0.05 * min_ext)
            return skipped("backend_cavity",
                           "dielectric too thick for the parallel-plate "
                           "cavity comparison (fringing dominates)");
    }
    CheckResult r;
    r.invariant = "backend_cavity";
    r.tolerance = ctx.tol.cavity;
    const ShapeSpec& sh = ctx.scenario.shapes[0];
    CavityModel cav;
    cav.a = sh.nx * ctx.scenario.pitch;
    cav.b = sh.ny * ctx.scenario.pitch;
    cav.d = sh.z;
    cav.eps_r = ctx.scenario.eps_r;
    // The BEM applies the sheet resistance to the meshed plane only (the
    // image plane is ideal); the cavity formula carries both planes.
    cav.rs_total = 2 * ctx.scenario.sheet_resistance;
    cav.max_modes = 50;
    cav.port_w = cav.port_h = ctx.scenario.pitch;
    const double ox = sh.ox * ctx.scenario.pitch;
    const double oy = sh.oy * ctx.scenario.pitch;
    std::vector<Point2> pts;
    for (const std::size_t n : ctx.ports) {
        const Point2 c = ctx.bem.mesh().nodes()[n].center;
        pts.push_back({c.x - ox, c.y - oy});
    }
    const double f10c =
        std::min(cav.mode_frequency(1, 0), cav.mode_frequency(0, 1));
    for (const double f : {0.08 * f10c, 0.15 * f10c}) {
        const MatrixC zb = ctx.direct.port_impedance(f, ctx.ports);
        const MatrixC zc = cav.impedance_matrix(pts, f);
        if (!all_finite(zb) || !all_finite(zc))
            return non_finite("backend_cavity", f);
        const double scale = std::max(zc.max_abs(), 1e-300);
        for (std::size_t i = 0; i < zb.rows(); ++i)
            for (std::size_t j = 0; j < zb.cols(); ++j) {
                const double za = std::abs(zc(i, j));
                const double err = std::abs(std::abs(zb(i, j)) - za) /
                                   std::max(za, 0.05 * scale);
                if (err > r.error) {
                    r.error = err;
                    if (err > r.tolerance)
                        r.detail = "BEM vs cavity |Z(" + std::to_string(i) +
                                   "," + std::to_string(j) + ")| rel=" +
                                   fmt(err) + " at f=" + fmt(f);
                }
            }
    }
    r.pass = r.error <= r.tolerance;
    return r;
}

// Batch-engine equivalence: a campaign routed through pgsi::serve — shared
// model cache, single-flight builds, one fault-injected retry at an
// escalated recovery rung — must reproduce the library's direct solve bit
// for bit. The scenario parameterizes the board (dimensions, dielectric,
// sheet resistance, pitch), so the property is exercised across the whole
// generator distribution, not one fixture.
CheckResult inv_serve_equivalence(const InvariantContext& ctx) {
    CheckResult r;
    r.invariant = "serve_equivalence";
    r.tolerance = 0; // bitwise: digests either match or they do not
    const ShapeSpec& sh = ctx.scenario.shapes[0];
    const double w = sh.nx * ctx.scenario.pitch;
    const double h = sh.ny * ctx.scenario.pitch;
    char board[512];
    std::snprintf(board, sizeof board,
                  "board %.9g %.9g\n"
                  "stackup sep %.9g eps %.9g sheet %.9g\n"
                  "vrm %.9g %.9g\n"
                  "driver d0 vcc %.9g %.9g gnd %.9g %.9g switch rise 1n "
                  "delay 1n width 4n\n"
                  "decap %.9g %.9g\n",
                  w, h, sh.z, ctx.scenario.eps_r,
                  ctx.scenario.sheet_resistance, 0.2 * w, 0.2 * h, 0.5 * w,
                  0.5 * h, 0.5 * w, 0.4 * h, 0.3 * w, 0.7 * h);

    serve::JobSpec spec;
    spec.kind = serve::JobKind::Sweep;
    spec.board_text = board;
    spec.model.mesh_pitch = ctx.scenario.pitch;
    spec.model.interior_nodes = 6;
    spec.freqs_hz = {0.3 * ctx.f10, 0.7 * ctx.f10};
    spec.ports = {{0.3 * w, 0.3 * h}, {0.7 * w, 0.6 * h}};
    spec.backend = SolverBackend::Direct;
    spec.max_retries = 1;

    // The direct solve the campaign must reproduce.
    const Board direct_board = parse_board_file(spec.board_text);
    const auto model =
        std::make_shared<const PlaneModel>(direct_board, spec.model);
    SolverOptions sopt;
    sopt.backend = spec.backend;
    const std::unique_ptr<PlaneSolver> direct = make_solver(
        model->bem(),
        SurfaceImpedance::from_sheet_resistance(
            direct_board.stackup().sheet_resistance),
        sopt);
    std::vector<std::size_t> nodes;
    for (const Point2& p : spec.ports)
        nodes.push_back(model->bem().mesh().nearest_node_any(p));
    const std::uint64_t want = serve::digest_matrices(
        direct->sweep_impedance(spec.freqs_hz, nodes));

    // Three identical jobs: the cache must collapse them to one build, and
    // the injected fault must cost one retry — not the answer.
    std::vector<serve::JobSpec> jobs(3, spec);
    jobs[0].id = "eq-a";
    jobs[1].id = "eq-b";
    jobs[2].id = "eq-c";
    robust::FaultInjector::arm("serve.job", 1, 1);
    serve::ModelCache cache;
    serve::BatchOptions bopt;
    bopt.cache = &cache;
    serve::JobQueue queue(bopt);
    const serve::BatchResult res = queue.run(jobs);
    robust::FaultInjector::disarm_all();

    if (!res.all_completed()) {
        r.pass = false;
        r.error = 1;
        r.detail = "batch did not complete: " +
                   std::to_string(res.stats.failed) + " failed";
        return r;
    }
    for (const serve::JobReport& rep : res.reports)
        if (rep.digest != want) {
            r.pass = false;
            r.error = 1;
            r.detail = "job " + rep.id + " digest diverged from the direct "
                       "solve (attempts=" + std::to_string(rep.attempts) + ")";
            return r;
        }
    if (res.stats.retries != 1 || res.stats.cache_hits != 2 ||
        res.stats.cache_misses != 1) {
        r.pass = false;
        r.error = 1;
        r.detail = "containment accounting off: retries=" +
                   std::to_string(res.stats.retries) + " cache=" +
                   std::to_string(res.stats.cache_hits) + "/" +
                   std::to_string(res.stats.cache_hits +
                                  res.stats.cache_misses);
        return r;
    }
    r.pass = true;
    r.error = 0;
    return r;
}

} // namespace

const std::vector<PlaneInvariant>& plane_invariants() {
    static const std::vector<PlaneInvariant> registry = {
        {"reciprocity", "reciprocity", inv_reciprocity},
        {"passivity", "passivity", inv_passivity},
        {"dc_capacitance", "limits", inv_dc_capacitance},
        {"dc_resistance", "limits", inv_dc_resistance},
        {"assembly_cache", "backends", inv_assembly_cache},
        {"backend_iterative", "backends", inv_backend_iterative},
        {"sweep_recycle", "backends", inv_sweep_recycle},
        {"backend_cavity", "backends", inv_backend_cavity},
        {"serve_equivalence", "backends", inv_serve_equivalence},
    };
    return registry;
}

CheckResult run_plane_invariant(const PlaneScenario& scenario,
                                const std::string& invariant,
                                const ToleranceLadder& tol) {
    for (const PlaneInvariant& inv : plane_invariants()) {
        if (invariant != inv.name) continue;
        const PlaneBem bem = scenario.make_bem(AssemblyMode::Auto);
        const DirectSolver direct(bem, scenario.surface_impedance());
        const std::vector<std::size_t> ports = scenario.port_nodes(bem.mesh());
        const InvariantContext ctx{scenario, bem,
                                   direct,   ports,
                                   scenario.est_first_resonance(), tol};
        return inv.fn(ctx);
    }
    throw InvalidArgument("unknown invariant '" + invariant + "'");
}

// --- netlist invariants -----------------------------------------------------

CheckResult check_energy_balance(const Netlist& nl, double dt, double tstop,
                                 double tol) {
    CheckResult r;
    r.invariant = "energy_balance";
    r.tolerance = tol;
    PGSI_REQUIRE(nl.drivers().empty() && nl.table_conductances().empty() &&
                     nl.tlines().empty() && nl.sparam_blocks().empty(),
                 "energy balance supports R/L/C/K/V/I netlists only");

    TransientStepper st(nl, dt);
    const auto volt = [&](NodeId n) { return st.node_voltage(n); };
    const auto cap_energy = [&] {
        double e = 0;
        for (const Capacitor& c : nl.capacitors()) {
            const double v = volt(c.a) - volt(c.b);
            e += 0.5 * c.c * v * v;
        }
        return e;
    };
    const auto ind_energy = [&] {
        double e = 0;
        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            const double i = st.inductor_current(k);
            e += 0.5 * nl.inductors()[k].l * i * i;
        }
        for (const MutualCoupling& m : nl.mutuals()) {
            const double mval = m.k * std::sqrt(nl.inductors()[m.l1].l *
                                                nl.inductors()[m.l2].l);
            e += mval * st.inductor_current(m.l1) * st.inductor_current(m.l2);
        }
        return e;
    };
    // Instantaneous power absorbed by sources and dissipated in resistances.
    const auto src_power = [&] {
        double p = 0;
        for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
            const VSource& v = nl.vsources()[k];
            p += (volt(v.a) - volt(v.b)) * st.vsource_current(k);
        }
        for (const ISource& i : nl.isources())
            p += (volt(i.a) - volt(i.b)) * i.src.value(st.time());
        return p;
    };
    const auto diss_power = [&] {
        double p = 0;
        for (const Resistor& res : nl.resistors()) {
            const double v = volt(res.a) - volt(res.b);
            p += v * v / res.r;
        }
        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            const double i = st.inductor_current(k);
            p += nl.inductors()[k].r * i * i;
        }
        return p;
    };

    const double e_cap0 = cap_energy();
    const double e_ind0 = ind_energy();
    double e_src = 0, e_diss = 0;
    double p_src_prev = src_power(), p_diss_prev = diss_power();
    const auto nsteps =
        static_cast<std::size_t>(std::llround(tstop / dt));
    for (std::size_t s = 0; s < nsteps; ++s) {
        st.step();
        const double p_src = src_power();
        const double p_diss = diss_power();
        e_src += 0.5 * (p_src + p_src_prev) * dt;
        e_diss += 0.5 * (p_diss + p_diss_prev) * dt;
        p_src_prev = p_src;
        p_diss_prev = p_diss;
    }
    const double d_cap = cap_energy() - e_cap0;
    const double d_ind = ind_energy() - e_ind0;
    // Tellegen: total absorbed power sums to zero, so the integrated terms
    // must cancel up to time-discretization error.
    const double residual = e_src + e_diss + d_cap + d_ind;
    const double scale = std::max({std::abs(e_src), e_diss, std::abs(d_cap),
                                   std::abs(d_ind), 1e-15});
    r.error = std::abs(residual) / scale;
    r.pass = r.error <= tol;
    if (!r.pass) {
        std::ostringstream os;
        os << "residual=" << fmt(residual) << " src=" << fmt(e_src)
           << " diss=" << fmt(e_diss) << " dC=" << fmt(d_cap)
           << " dL=" << fmt(d_ind);
        r.detail = os.str();
    }
    return r;
}

CheckResult check_fault_recovery(const Netlist& nl, double dt, double tstop,
                                 double tol) {
    CheckResult r;
    r.invariant = "fault_recovery";
    r.tolerance = tol;
    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = tstop;
    const TransientResult golden = transient_analyze(nl, opt);

    const std::uint64_t fired0 =
        robust::FaultInjector::fire_count("transient.newton");
    robust::FaultInjector::arm("transient.newton", 1, 2);
    TransientResult faulted;
    try {
        faulted = transient_analyze(nl, opt);
    } catch (...) {
        robust::FaultInjector::disarm_all();
        throw;
    }
    const std::uint64_t fired =
        robust::FaultInjector::fire_count("transient.newton");
    robust::FaultInjector::disarm_all();
    if (fired <= fired0) {
        r.pass = false;
        r.detail = "injected fault never fired";
        return r;
    }

    double scale = 1e-12;
    for (std::size_t k = 0; k < golden.probes.size(); ++k)
        scale = std::max(scale, golden.peak_abs(golden.probes[k]));
    PGSI_REQUIRE(golden.samples.size() == faulted.samples.size(),
                 "fault_recovery: sample count changed under recovery");
    // The fault fires on the first step attempts, so the recovery ladder's
    // backward-Euler substeps land right at the excitation discontinuity,
    // where the integrator switch has a legitimate O(dt) local difference
    // from the trapezoidal golden. Require reconvergence: strict tolerance
    // after a short settling window, and only a gross-divergence bound
    // inside it.
    constexpr std::size_t kSettle = 16;
    double worst_settled = 0;
    double worst_early = 0;
    for (std::size_t s = 0; s < golden.samples.size(); ++s)
        for (std::size_t k = 0; k < golden.probes.size(); ++k) {
            const double d =
                std::abs(golden.samples[s][k] - faulted.samples[s][k]);
            (s < kSettle ? worst_early : worst_settled) =
                std::max(s < kSettle ? worst_early : worst_settled, d);
        }
    r.error = worst_settled / scale;
    r.pass = r.error <= tol && worst_early / scale <= 10 * tol;
    if (!r.pass) {
        r.error = std::max(r.error, worst_early / (10 * scale));
        r.detail = "faulted run deviates from golden: settled rel " +
                   fmt(worst_settled / scale) + ", early rel " +
                   fmt(worst_early / scale) + " (recoveries: " +
                   std::to_string(faulted.recovery.events.size()) + ")";
    }
    return r;
}

} // namespace pgsi::verify
