#include "verify/shrink.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace pgsi::verify {

namespace {

bool is_valid(const PlaneScenario& s) {
    try {
        s.validate();
        return true;
    } catch (const Error&) {
        return false;
    }
}

// Scale a cell rect after an axis halving, clamped back into the shape.
// Returns false when the feature degenerates and should be dropped.
bool rescale(CellRect& r, int nx, int ny, bool halved_x, bool halved_y) {
    if (halved_x) {
        r.x0 /= 2;
        r.x1 = (r.x1 + 1) / 2;
    }
    if (halved_y) {
        r.y0 /= 2;
        r.y1 = (r.y1 + 1) / 2;
    }
    r.x0 = std::max(r.x0, 1);
    r.y0 = std::max(r.y0, 1);
    r.x1 = std::min(r.x1, nx - 1);
    r.y1 = std::min(r.y1, ny - 1);
    return r.x1 > r.x0 && r.y1 > r.y0;
}

// Drop shape `idx`, rehoming the port list (ports on the dropped shape go
// away; indices above it shift down). Returns false when no port survives.
bool drop_shape(PlaneScenario& s, std::size_t idx) {
    s.shapes.erase(s.shapes.begin() + static_cast<std::ptrdiff_t>(idx));
    std::vector<PortSpec> kept;
    for (const PortSpec& p : s.ports) {
        if (p.shape == idx) continue;
        PortSpec q = p;
        if (q.shape > idx) --q.shape;
        kept.push_back(q);
    }
    s.ports = std::move(kept);
    return !s.ports.empty();
}

} // namespace

ShrinkResult shrink_scenario(const PlaneScenario& start,
                             const FailPredicate& still_fails) {
    ShrinkResult res;
    res.scenario = start;

    const auto attempt = [&](PlaneScenario cand) {
        ++res.moves_tried;
        if (!is_valid(cand)) return false;
        bool fails = false;
        try {
            fails = still_fails(cand);
        } catch (...) {
            fails = false;
        }
        if (!fails) return false;
        res.scenario = std::move(cand);
        ++res.moves_kept;
        return true;
    };

    bool progress = true;
    while (progress) {
        progress = false;
        PlaneScenario& cur = res.scenario;

        // 1. Collapse layers / drop whole shapes, last first.
        for (std::size_t i = cur.shapes.size(); i-- > 0 && cur.shapes.size() > 1;) {
            PlaneScenario cand = cur;
            if (!drop_shape(cand, i)) continue;
            if (attempt(std::move(cand))) progress = true;
        }

        // 2. Drop holes, L-cuts and lattice stretch.
        for (std::size_t i = 0; i < cur.shapes.size(); ++i) {
            if (cur.shapes[i].hole) {
                PlaneScenario cand = cur;
                cand.shapes[i].hole.reset();
                if (attempt(std::move(cand))) progress = true;
            }
            if (cur.shapes[i].lcut) {
                PlaneScenario cand = cur;
                cand.shapes[i].lcut.reset();
                if (attempt(std::move(cand))) progress = true;
            }
            if (cur.shapes[i].stretch != 1.0) {
                PlaneScenario cand = cur;
                cand.shapes[i].stretch = 1.0;
                if (attempt(std::move(cand))) progress = true;
            }
        }

        // 3. Drop ports, last first, keeping at least one.
        for (std::size_t i = cur.ports.size(); i-- > 0 && cur.ports.size() > 1;) {
            PlaneScenario cand = cur;
            cand.ports.erase(cand.ports.begin() +
                             static_cast<std::ptrdiff_t>(i));
            if (attempt(std::move(cand))) progress = true;
        }

        // 4. Halve cell counts per shape and axis, then decrement for the
        // tail the halving overshoots.
        for (std::size_t i = 0; i < cur.shapes.size(); ++i) {
            for (const bool axis_x : {true, false}) {
                const int n = axis_x ? cur.shapes[i].nx : cur.shapes[i].ny;
                for (const int next : {n / 2, n - 1}) {
                    if (next < 2 || next >= n) continue;
                    PlaneScenario cand = cur;
                    ShapeSpec& sh = cand.shapes[i];
                    const bool halved = next == n / 2 && n / 2 < n - 1;
                    (axis_x ? sh.nx : sh.ny) = next;
                    if (sh.hole &&
                        !rescale(*sh.hole, sh.nx, sh.ny, halved && axis_x,
                                 halved && !axis_x))
                        sh.hole.reset();
                    if (sh.lcut) {
                        if (halved) {
                            if (axis_x) sh.lcut->x0 /= 2;
                            else sh.lcut->y0 /= 2;
                        }
                        sh.lcut->x0 = std::clamp(sh.lcut->x0, 1, sh.nx - 1);
                        sh.lcut->y0 = std::clamp(sh.lcut->y0, 1, sh.ny - 1);
                        sh.lcut->x1 = sh.nx;
                        sh.lcut->y1 = sh.ny;
                    }
                    if (attempt(std::move(cand))) {
                        progress = true;
                        break; // shape layout changed; recompute from `cur`
                    }
                }
            }
        }
    }
    return res;
}

ReproPaths write_repro(const std::string& dir, const std::string& tag,
                       const PlaneScenario& scenario,
                       const CheckResult& failure) {
    std::filesystem::create_directories(dir);
    std::string test_name = tag;
    for (char& c : test_name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    if (!test_name.empty() && std::isdigit(static_cast<unsigned char>(test_name[0])))
        test_name.insert(test_name.begin(), 'R');

    ReproPaths paths;
    paths.cpp_path = (std::filesystem::path(dir) / (tag + ".cpp")).string();
    paths.board_path = (std::filesystem::path(dir) / (tag + ".board")).string();
    {
        std::ofstream f(paths.cpp_path);
        PGSI_REQUIRE(f.good(), "write_repro: cannot open " + paths.cpp_path);
        f << scenario.to_cpp(test_name, failure.invariant);
    }
    {
        std::ofstream f(paths.board_path);
        PGSI_REQUIRE(f.good(), "write_repro: cannot open " + paths.board_path);
        f << "# invariant " << failure.invariant << " error " << failure.error
          << " tolerance " << failure.tolerance << "\n"
          << scenario.to_board();
    }
    return paths;
}

} // namespace pgsi::verify
