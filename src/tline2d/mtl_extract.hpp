// Fast 2-D field solver for multiconductor transmission-line parameters
// (§5.2: "Fast 2-D field solver is used to extract the transmission line
// parameters").
//
// Infinitely thin strips on the surface of a grounded dielectric slab
// (microstrip) or embedded in a homogeneous dielectric over a ground plane
// (stripline-like) are discretized into line-charge segments; the 2-D
// potential-coefficient matrix uses the logarithmic kernel with the same
// image series as the 3-D extractor. Per-unit-length matrices follow the
// standard quasi-TEM recipe:
//
//     [C]  — solve P·q = v with unit-potential excitations (with dielectric)
//     [C0] — the same with εr = 1
//     [L]  = μ0 ε0 [C0]⁻¹
//
// Edge charge crowding is resolved by cosine-spaced segment boundaries.
#pragma once

#include <vector>

#include "circuit/tline.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// One strip of a planar multiconductor system.
struct StripSpec {
    double x_center = 0; ///< lateral position of the strip center [m]
    double width = 0;    ///< strip width [m]
};

/// 2-D extraction controls.
struct Mtl2dOptions {
    int segments_per_strip = 32;
    bool cosine_spacing = true; ///< refine segments toward strip edges
    int slab_images = 64;       ///< image-series truncation
};

/// Per-unit-length matrices of coupled microstrips: strips on a dielectric
/// slab (relative permittivity eps_r, thickness h) backed by a ground plane.
MtlParameters extract_microstrip(const std::vector<StripSpec>& strips,
                                 double eps_r, double h,
                                 const Mtl2dOptions& options = {});

/// Scalar figures of a single line, derived from 1×1 L and C.
struct LineFigures {
    double z0 = 0;      ///< characteristic impedance [ohm]
    double eps_eff = 0; ///< effective permittivity
    double delay_per_m = 0; ///< [s/m]
};
LineFigures line_figures(const MtlParameters& p);

} // namespace pgsi
