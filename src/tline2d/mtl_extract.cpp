#include "tline2d/mtl_extract.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numeric/lu.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

struct Segment {
    double x0 = 0, x1 = 0;
    std::size_t conductor = 0;
    double width() const { return x1 - x0; }
    double center() const { return 0.5 * (x0 + x1); }
};

// ∫ ln|x - x'| dx' over [a, b] — antiderivative u·ln|u| − u of ln|u|.
double log_segment_integral(double x, double a, double b) {
    auto f = [](double u) { return u == 0.0 ? 0.0 : u * std::log(std::abs(u)) - u; };
    return f(x - a) - f(x - b);
}

// ∫ 0.5·ln((x - x')² + z²) dx' over [a, b].
double log_segment_integral_z(double x, double a, double b, double z) {
    auto h = [z](double u) {
        const double r2 = u * u + z * z;
        double v = -u;
        if (r2 > 0) v += 0.5 * u * std::log(r2);
        if (z != 0.0) v += z * std::atan(u / z);
        return v;
    };
    return h(x - a) - h(x - b);
}

std::vector<Segment> segment_strips(const std::vector<StripSpec>& strips,
                                    const Mtl2dOptions& opt) {
    std::vector<Segment> segs;
    for (std::size_t c = 0; c < strips.size(); ++c) {
        const StripSpec& s = strips[c];
        PGSI_REQUIRE(s.width > 0, "extract_microstrip: strip width must be > 0");
        const double x0 = s.x_center - 0.5 * s.width;
        const int n = opt.segments_per_strip;
        for (int k = 0; k < n; ++k) {
            double f0 = static_cast<double>(k) / n;
            double f1 = static_cast<double>(k + 1) / n;
            if (opt.cosine_spacing) {
                f0 = 0.5 * (1.0 - std::cos(pi * f0));
                f1 = 0.5 * (1.0 - std::cos(pi * f1));
            }
            segs.push_back({x0 + f0 * s.width, x0 + f1 * s.width, c});
        }
    }
    return segs;
}

// Maxwell capacitance matrix for the given permittivity.
MatrixD capacitance_for(const std::vector<Segment>& segs, std::size_t n_cond,
                        double eps_r, double h, int max_images) {
    const std::size_t n = segs.size();
    const double k = (eps_r - 1.0) / (eps_r + 1.0);
    const double eps_bar = 0.5 * eps0 * (1.0 + eps_r);
    // Image coefficients a_i = -(1+K)(-K)^{i-1} (see em/greens.hpp).
    VectorD coeff;
    double c = -(1.0 + k);
    for (int i = 0; i < max_images; ++i) {
        coeff.push_back(c);
        c *= -k;
        if (std::abs(c) < 1e-9) break;
    }

    // Potential-coefficient matrix per unit total line charge.
    MatrixD p(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = segs[i].center();
        for (std::size_t j = 0; j < n; ++j) {
            double v = -log_segment_integral(x, segs[j].x0, segs[j].x1);
            for (std::size_t m = 0; m < coeff.size(); ++m)
                v -= coeff[m] * log_segment_integral_z(
                                    x, segs[j].x0, segs[j].x1,
                                    2.0 * static_cast<double>(m + 1) * h);
            p(i, j) = v / (2.0 * pi * eps_bar * segs[j].width());
        }
    }

    const Lu<double> lu(std::move(p));
    MatrixD cm(n_cond, n_cond);
    VectorD rhs(n);
    for (std::size_t cexc = 0; cexc < n_cond; ++cexc) {
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = (segs[i].conductor == cexc) ? 1.0 : 0.0;
        const VectorD q = lu.solve(rhs);
        for (std::size_t i = 0; i < n; ++i) cm(segs[i].conductor, cexc) += q[i];
    }
    // Symmetrize (reciprocity holds analytically).
    for (std::size_t i = 0; i < n_cond; ++i)
        for (std::size_t j = i + 1; j < n_cond; ++j) {
            const double v = 0.5 * (cm(i, j) + cm(j, i));
            cm(i, j) = v;
            cm(j, i) = v;
        }
    return cm;
}

} // namespace

MtlParameters extract_microstrip(const std::vector<StripSpec>& strips,
                                 double eps_r, double h,
                                 const Mtl2dOptions& options) {
    PGSI_REQUIRE(!strips.empty(), "extract_microstrip: no strips");
    PGSI_TRACE_SCOPE("tline2d.extract_microstrip");
    PGSI_REQUIRE(eps_r >= 1.0, "extract_microstrip: eps_r must be >= 1");
    PGSI_REQUIRE(h > 0, "extract_microstrip: slab height must be positive");

    const std::vector<Segment> segs = segment_strips(strips, options);
    MtlParameters out;
    out.c = capacitance_for(segs, strips.size(), eps_r, h, options.slab_images);
    const MatrixD c_air =
        capacitance_for(segs, strips.size(), 1.0, h, options.slab_images);
    out.l = Lu<double>(c_air).inverse() * (mu0 * eps0);
    return out;
}

LineFigures line_figures(const MtlParameters& p) {
    PGSI_REQUIRE(p.l.rows() == 1 && p.c.rows() == 1,
                 "line_figures: single conductor expected");
    LineFigures f;
    const double l = p.l(0, 0), c = p.c(0, 0);
    f.z0 = std::sqrt(l / c);
    f.delay_per_m = std::sqrt(l * c);
    f.eps_eff = l * c * c0 * c0;
    return f;
}

} // namespace pgsi
