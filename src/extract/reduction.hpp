// Node reduction for the extracted nodal matrices (§4.2: "for a real design
// where every external connection, such as power/ground pin, is selected as
// a circuit node").
//
// The BEM produces nodal matrices over every mesh cell; the equivalent
// circuit retains only the designated circuit nodes (pins, probe pads,
// optionally a coarse interior grid). Two reductions are needed:
//
//  * Kron reduction (Laplacian Schur complement) for the inverse-inductance
//    matrix Γ and the DC conductance G: internal nodes carry no injected
//    current, so  M_red = M_kk − M_ke · M_ee⁻¹ · M_ek.
//  * Floating-node reduction for the Maxwell capacitance: internal nodes
//    carry no *charge*, which leads to the identical Schur complement on C.
//
// Both are the same algebra; the function below implements it once.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace pgsi {

/// Schur complement of m onto the kept index set:
/// m_kk − m_ke · m_ee⁻¹ · m_ek. Kept indices must be distinct and in range.
MatrixD schur_reduce(const MatrixD& m, const std::vector<std::size_t>& keep);

/// The complement of `keep` in [0, n).
std::vector<std::size_t> complement_indices(std::size_t n,
                                            const std::vector<std::size_t>& keep);

} // namespace pgsi
