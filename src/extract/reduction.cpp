#include "extract/reduction.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

std::vector<std::size_t> complement_indices(std::size_t n,
                                            const std::vector<std::size_t>& keep) {
    std::vector<bool> kept(n, false);
    for (std::size_t k : keep) {
        PGSI_REQUIRE(k < n, "complement_indices: index out of range");
        PGSI_REQUIRE(!kept[k], "complement_indices: duplicate kept index");
        kept[k] = true;
    }
    std::vector<std::size_t> out;
    out.reserve(n - keep.size());
    for (std::size_t i = 0; i < n; ++i)
        if (!kept[i]) out.push_back(i);
    return out;
}

MatrixD schur_reduce(const MatrixD& m, const std::vector<std::size_t>& keep) {
    PGSI_REQUIRE(m.square(), "schur_reduce: matrix must be square");
    PGSI_REQUIRE(!keep.empty(), "schur_reduce: keep set is empty");
    const std::vector<std::size_t> elim = complement_indices(m.rows(), keep);
    if (elim.empty()) return m.submatrix(keep, keep);

    const MatrixD mkk = m.submatrix(keep, keep);
    const MatrixD mke = m.submatrix(keep, elim);
    const MatrixD mek = m.submatrix(elim, keep);
    const MatrixD mee = m.submatrix(elim, elim);

    const MatrixD x = Lu<double>(mee).solve(mek); // mee⁻¹ mek
    MatrixD red = mkk;
    const MatrixD corr = mke * x;
    red -= corr;
    // The inputs are symmetric; restore exact symmetry lost to pivoting.
    for (std::size_t i = 0; i < red.rows(); ++i)
        for (std::size_t j = i + 1; j < red.cols(); ++j) {
            const double v = 0.5 * (red(i, j) + red(j, i));
            red(i, j) = v;
            red(j, i) = v;
        }
    return red;
}

} // namespace pgsi
