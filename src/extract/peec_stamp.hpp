// Direct PEEC netlist realization of the assembled MPIE system (§3.2).
//
// Alternative to the element-wise equivalent circuit of §4.2: every mesh
// branch becomes an inductor (with its DC resistance in series) and every
// pair of branches of like orientation gets a mutual coupling from the
// partial-inductance matrix; the Maxwell capacitance becomes a capacitor
// network. Because the partial-inductance matrix is SPD, this realization is
// passive *by construction* — unconditionally stable in transient analysis —
// at the cost of one MNA current unknown per mesh branch.
//
// Use it for structures with several galvanically separate nets (coupled
// traces, split planes): there the Γ-based branch circuit contains negative
// mutual-inductance branches whose internal loop modes are unstable, while
// the PEEC form is safe.
#pragma once

#include "circuit/netlist.hpp"
#include "em/bem_plane.hpp"

namespace pgsi {

/// Controls for the PEEC stamping.
struct PeecOptions {
    /// Drop mutual couplings with |k| below this (keeps the K-element count
    /// manageable on big meshes; 0 keeps all).
    double coupling_floor = 1e-3;
    /// Drop capacitor branches below this fraction of the largest Maxwell
    /// off-diagonal.
    double cap_rel_floor = 1e-3;
};

/// Stamp the full PEEC model of `bem` into `nl`.
///
/// node_map[i] is the netlist node for mesh node i (created by the caller,
/// e.g. via Netlist::add_node); `ref` is the reference node the node
/// capacitances return to. Element names are prefixed for uniqueness.
void stamp_peec(Netlist& nl, const PlaneBem& bem,
                const std::vector<NodeId>& node_map, NodeId ref,
                const std::string& prefix, const PeecOptions& options = {});

} // namespace pgsi
