// Rational macromodeling by vector fitting (§2: the tool must "provide good
// macro models over extended frequency bands").
//
// The quasi-static equivalent circuit is one macromodel; this module
// provides the complementary broadband one: fit sampled frequency-domain
// impedance data Z(jω) — from the direct MPIE sweep, a Touchstone file, or
// a measurement — with a rational function
//
//     Z(s) ≈ Σ_k  r_k / (s − p_k)  +  d  +  s·e
//
// using the Gustavsen–Semlyen vector-fitting pole-relocation iteration, and
// synthesize the result as a Foster-form RLC netlist:
//
//   * real pole      r/(s−p)            → series R–L branch
//                                          (R = −r/p, L = 1/... see .cpp)
//   * complex pair                      → series R–L–C (+ shunt) branch
//   * d              constant           → series R
//   * s·e            linear             → series L
//
// so a frequency-tabulated port can be dropped into the time-domain
// co-simulation as ordinary circuit elements.
#pragma once

#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Result of a rational fit. Poles/residues come in conjugate pairs for
/// complex entries.
struct RationalFit {
    VectorC poles;
    VectorC residues;
    double d = 0; ///< constant term
    double e = 0; ///< linear (s·e) term

    /// Evaluate the fit at frequency f [Hz].
    Complex evaluate(double freq_hz) const;

    /// Worst-case relative error against samples.
    double max_relative_error(const VectorD& freqs_hz, const VectorC& h) const;
};

/// Controls for the fit.
struct VectorFitOptions {
    int n_poles = 8;       ///< fit order (pairs count as two)
    int iterations = 12;   ///< pole-relocation passes
    bool enforce_stable = true; ///< flip unstable poles into the left half plane
    bool fit_e = true;     ///< include the s·e term (inductive data needs it)
    /// Weight each sample by 1/|h| so the fit targets *relative* accuracy —
    /// essential for impedance data spanning decades across resonances.
    bool relative_weighting = true;
};

/// Fit sampled data h(jω_i) at freqs_hz with the vector-fitting iteration.
/// Throws NumericalError if the least-squares systems degenerate.
RationalFit vector_fit(const VectorD& freqs_hz, const VectorC& h,
                       const VectorFitOptions& options = {});

/// Synthesize the fitted impedance as a two-terminal Foster network between
/// nodes a and b. Requires every pole stable and the synthesized element
/// values to come out positive enough to realize (small negative residues of
/// a good fit are clamped); throws InvalidArgument otherwise. Element names
/// are prefixed by `name`.
void stamp_foster_impedance(Netlist& nl, const std::string& name, NodeId a,
                            NodeId b, const RationalFit& fit);

} // namespace pgsi
