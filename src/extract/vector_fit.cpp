#include "extract/vector_fit.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

Complex RationalFit::evaluate(double freq_hz) const {
    const Complex s(0.0, 2.0 * pi * freq_hz);
    Complex h(d, 0.0);
    h += s * e;
    for (std::size_t k = 0; k < poles.size(); ++k)
        h += residues[k] / (s - poles[k]);
    return h;
}

double RationalFit::max_relative_error(const VectorD& freqs_hz,
                                       const VectorC& h) const {
    PGSI_REQUIRE(freqs_hz.size() == h.size(),
                 "max_relative_error: size mismatch");
    double scale = 0;
    for (const Complex& v : h) scale = std::max(scale, std::abs(v));
    double worst = 0;
    for (std::size_t i = 0; i < h.size(); ++i)
        worst = std::max(worst, std::abs(evaluate(freqs_hz[i]) - h[i]) / scale);
    return worst;
}

namespace {

// Pole bookkeeping: poles are stored as a flat list where complex poles
// appear as conjugate pairs (p, p*) with Im(p) > 0 first.
bool is_pair_head(const VectorC& poles, std::size_t k) {
    return poles[k].imag() > 0.0;
}

// Solve the real least-squares system A x = b via column-scaled normal
// equations (adequate for the modest, well-sampled systems of VF).
VectorD solve_ls(const MatrixD& a, const VectorD& b) {
    const std::size_t rows = a.rows(), cols = a.cols();
    PGSI_REQUIRE(rows >= cols, "vector_fit: under-determined LS system");
    VectorD colscale(cols, 0.0);
    for (std::size_t j = 0; j < cols; ++j) {
        double s = 0;
        for (std::size_t i = 0; i < rows; ++i) s += a(i, j) * a(i, j);
        colscale[j] = s > 0 ? 1.0 / std::sqrt(s) : 1.0;
    }
    MatrixD ata(cols, cols);
    VectorD atb(cols, 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            const double aij = a(i, j) * colscale[j];
            atb[j] += aij * b[i];
            for (std::size_t k = j; k < cols; ++k)
                ata(j, k) += aij * a(i, k) * colscale[k];
        }
    }
    for (std::size_t j = 0; j < cols; ++j)
        for (std::size_t k = 0; k < j; ++k) ata(j, k) = ata(k, j);
    // Tiny Tikhonov term guards rank deficiency from redundant poles.
    for (std::size_t j = 0; j < cols; ++j) ata(j, j) += 1e-12;
    VectorD x = Lu<double>(ata).solve(atb);
    for (std::size_t j = 0; j < cols; ++j) x[j] *= colscale[j];
    return x;
}

// Real-coefficient partial-fraction basis at s = jω for the current poles:
// real pole      -> 1/(s-p)
// conjugate pair -> [1/(s-p) + 1/(s-p*),  j/(s-p) - j/(s-p*)]
void basis_row(const VectorC& poles, Complex s, VectorC& phi) {
    const std::size_t np = poles.size();
    phi.assign(np, Complex{});
    for (std::size_t k = 0; k < np;) {
        if (is_pair_head(poles, k)) {
            const Complex t1 = 1.0 / (s - poles[k]);
            const Complex t2 = 1.0 / (s - poles[k + 1]);
            phi[k] = t1 + t2;
            phi[k + 1] = Complex(0, 1) * (t1 - t2);
            k += 2;
        } else {
            phi[k] = 1.0 / (s - poles[k]);
            ++k;
        }
    }
}

// Convert real basis coefficients back to complex residues.
VectorC coeffs_to_residues(const VectorC& poles, const VectorD& c) {
    VectorC r(poles.size());
    for (std::size_t k = 0; k < poles.size();) {
        if (is_pair_head(poles, k)) {
            r[k] = Complex(c[k], c[k + 1]);
            r[k + 1] = std::conj(r[k]);
            k += 2;
        } else {
            r[k] = Complex(c[k], 0.0);
            ++k;
        }
    }
    return r;
}

} // namespace

RationalFit vector_fit(const VectorD& freqs_hz, const VectorC& h,
                       const VectorFitOptions& options) {
    PGSI_REQUIRE(freqs_hz.size() == h.size() && freqs_hz.size() >= 4,
                 "vector_fit: need matching, non-trivial sample sets");
    const int np = options.n_poles;
    PGSI_REQUIRE(np >= 2 && np % 2 == 0,
                 "vector_fit: n_poles must be even and >= 2");
    const std::size_t ns = freqs_hz.size();
    PGSI_REQUIRE(2 * ns >= static_cast<std::size_t>(3 * np + 2),
                 "vector_fit: not enough samples for the requested order");

    // Initial poles: weakly damped conjugate pairs log-spaced over the band.
    VectorC poles;
    const double w_lo = 2 * pi * freqs_hz.front();
    const double w_hi = 2 * pi * freqs_hz.back();
    for (int k = 0; k < np / 2; ++k) {
        const double w = w_lo * std::pow(w_hi / w_lo,
                                         (k + 0.5) / (np / 2.0));
        poles.push_back(Complex(-w / 100.0, w));
        poles.push_back(Complex(-w / 100.0, -w));
    }

    const int n_extra = options.fit_e ? 2 : 1; // d (+ e)
    VectorC phi(np);

    double hmax = 0;
    for (const Complex& v : h) hmax = std::max(hmax, std::abs(v));
    VectorD weight(ns, 1.0);
    if (options.relative_weighting)
        for (std::size_t i = 0; i < ns; ++i)
            weight[i] = 1.0 / (std::abs(h[i]) + 1e-3 * hmax);

    for (int iter = 0; iter < options.iterations; ++iter) {
        // Unknowns: np fit coefficients, d (, e), np sigma coefficients.
        const std::size_t cols = np + n_extra + np;
        MatrixD a(2 * ns, cols);
        VectorD b(2 * ns);
        for (std::size_t i = 0; i < ns; ++i) {
            const Complex s(0.0, 2 * pi * freqs_hz[i]);
            basis_row(poles, s, phi);
            const double w = weight[i];
            for (int k = 0; k < np; ++k) {
                a(2 * i, k) = w * phi[k].real();
                a(2 * i + 1, k) = w * phi[k].imag();
            }
            a(2 * i, np) = w; // d
            if (options.fit_e) {
                a(2 * i, np + 1) = w * s.real();
                a(2 * i + 1, np + 1) = w * s.imag();
            }
            for (int k = 0; k < np; ++k) {
                const Complex q = -h[i] * phi[k];
                a(2 * i, np + n_extra + k) = w * q.real();
                a(2 * i + 1, np + n_extra + k) = w * q.imag();
            }
            b[2 * i] = w * h[i].real();
            b[2 * i + 1] = w * h[i].imag();
        }
        const VectorD x = solve_ls(a, b);

        // Zeros of sigma = eigenvalues of A - b·cᵀ in the real pole basis.
        VectorD sig(x.begin() + np + n_extra, x.end());
        MatrixC m(np, np);
        for (std::size_t k = 0; k < static_cast<std::size_t>(np);) {
            if (is_pair_head(poles, k)) {
                const double re = poles[k].real(), im = poles[k].imag();
                m(k, k) = Complex(re, 0);
                m(k, k + 1) = Complex(im, 0);
                m(k + 1, k) = Complex(-im, 0);
                m(k + 1, k + 1) = Complex(re, 0);
                // b-vector is [2, 0] for a pair.
                for (std::size_t j = 0; j < static_cast<std::size_t>(np); ++j)
                    m(k, j) -= 2.0 * sig[j];
                k += 2;
            } else {
                m(k, k) = poles[k];
                for (std::size_t j = 0; j < static_cast<std::size_t>(np); ++j)
                    m(k, j) -= sig[j];
                ++k;
            }
        }
        VectorC zeros = eigenvalues_general(std::move(m));
        // The relocation matrix is real, so eigenvalues come in conjugate
        // pairs (to roundoff). Cluster them robustly: map each to its
        // positive-imag representative, sort, and merge near-duplicates.
        std::vector<Complex> reps;
        for (Complex z : zeros) {
            if (options.enforce_stable && z.real() > 0)
                z = Complex(-z.real(), z.imag());
            reps.push_back(Complex(z.real(), std::abs(z.imag())));
        }
        std::sort(reps.begin(), reps.end(), [](Complex a2, Complex b2) {
            return a2.imag() != b2.imag() ? a2.imag() < b2.imag()
                                          : a2.real() < b2.real();
        });
        VectorC next;
        std::size_t i = 0;
        const auto unp = static_cast<std::size_t>(np);
        while (i < reps.size() && next.size() < unp) {
            const Complex p = reps[i];
            const double mag = std::abs(p) + 1.0;
            if (p.imag() < 1e-8 * mag) {
                next.push_back(Complex(p.real(), 0.0));
                ++i;
            } else if (next.size() + 2 <= unp) {
                // A conjugate pair; merge twin representatives when present.
                if (i + 1 < reps.size() && std::abs(reps[i + 1] - p) < 1e-6 * mag)
                    ++i;
                next.push_back(p);
                next.push_back(std::conj(p));
                ++i;
            } else {
                // One slot left: degrade the pair to a real pole.
                next.push_back(Complex(p.real(), 0.0));
                ++i;
            }
        }
        while (next.size() < unp)
            next.push_back(Complex(-w_hi * (1.0 + next.size() * 0.1), 0.0));
        poles = std::move(next);
    }

    // Final residue fit with the converged poles.
    const std::size_t cols = np + n_extra;
    MatrixD a(2 * ns, cols);
    VectorD b(2 * ns);
    for (std::size_t i = 0; i < ns; ++i) {
        const Complex s(0.0, 2 * pi * freqs_hz[i]);
        basis_row(poles, s, phi);
        const double w = weight[i];
        for (int k = 0; k < np; ++k) {
            a(2 * i, k) = w * phi[k].real();
            a(2 * i + 1, k) = w * phi[k].imag();
        }
        a(2 * i, np) = w;
        if (options.fit_e) {
            a(2 * i, np + 1) = w * s.real();
            a(2 * i + 1, np + 1) = w * s.imag();
        }
        b[2 * i] = w * h[i].real();
        b[2 * i + 1] = w * h[i].imag();
    }
    const VectorD x = solve_ls(a, b);

    RationalFit fit;
    fit.poles = poles;
    fit.residues = coeffs_to_residues(poles, x);
    fit.d = x[np];
    fit.e = options.fit_e ? x[np + 1] : 0.0;
    return fit;
}

void stamp_foster_impedance(Netlist& nl, const std::string& name, NodeId a,
                            NodeId b, const RationalFit& fit) {
    for (const Complex& p : fit.poles)
        PGSI_REQUIRE(p.real() < 0,
                     "stamp_foster_impedance: unstable pole; refit with "
                     "enforce_stable");

    // Chain the Foster sections in series between a and b.
    NodeId cur = a;
    std::size_t section = 0;
    auto next_node = [&](bool last) {
        return last ? b : nl.add_node(name + "_f" + std::to_string(section));
    };

    // Count realizable sections to know which one is last.
    std::vector<int> kinds; // 0: d-resistor, 1: e-inductor, 2: real pole, 3: pair
    if (fit.d > 1e-12) kinds.push_back(0);
    if (fit.e > 1e-21) kinds.push_back(1);
    for (std::size_t k = 0; k < fit.poles.size();) {
        if (fit.poles[k].imag() > 0) {
            kinds.push_back(3);
            k += 2;
        } else if (fit.poles[k].imag() == 0.0) {
            kinds.push_back(2);
            ++k;
        } else {
            ++k; // conjugate twin, handled with its head
        }
    }
    PGSI_REQUIRE(!kinds.empty(), "stamp_foster_impedance: nothing to realize");

    std::size_t emitted = 0;
    std::size_t k = 0; // pole cursor
    for (const int kind : kinds) {
        const bool last = (++emitted == kinds.size());
        const NodeId nxt = next_node(last);
        const std::string tag = name + "_s" + std::to_string(section++);
        if (kind == 0) {
            nl.add_resistor("R" + tag, cur, nxt, fit.d);
        } else if (kind == 1) {
            nl.add_inductor("L" + tag, cur, nxt, fit.e);
        } else if (kind == 2) {
            // Real pole p < 0, residue r: parallel R-C with R = -r/p, C = 1/r.
            while (fit.poles[k].imag() != 0.0) ++k;
            const double p = fit.poles[k].real();
            const double r = fit.residues[k].real();
            ++k;
            PGSI_REQUIRE(r != 0,
                         "stamp_foster_impedance: zero real-pole residue");
            // Signed elements are admitted: a stable but non-positive-real
            // fit synthesizes with negative R/C, which MNA handles.
            nl.add_resistor("R" + tag, cur, nxt, -r / p);
            nl.add_capacitor("C" + tag, cur, nxt, 1.0 / r);
        } else {
            while (!(fit.poles[k].imag() > 0)) ++k;
            // Complex pair: Z = (alpha s + beta)/(s^2 + gamma s + delta),
            // realized as C ∥ (L + R_L) ∥ R_p (see derivation in the tests).
            const Complex p = fit.poles[k];
            const Complex r = fit.residues[k];
            k += 2;
            const double alpha = 2.0 * r.real();
            const double beta = -2.0 * (r * std::conj(p)).real();
            const double gamma = -2.0 * p.real();
            const double delta = std::norm(p);
            PGSI_REQUIRE(alpha != 0,
                         "stamp_foster_impedance: degenerate pair (alpha = 0)");
            const double c = 1.0 / alpha;
            const double k1 = beta / alpha;         // R_L / L
            const double k2 = gamma - k1;           // 1/(R_p C)
            PGSI_REQUIRE(std::abs(delta - k1 * k2) > 1e-300,
                         "stamp_foster_impedance: degenerate pair");
            const double lc = 1.0 / (delta - k1 * k2);
            const double l = lc / c;
            const double rl = k1 * l;
            nl.add_capacitor("C" + tag, cur, nxt, c);
            nl.add_inductor("L" + tag, cur, nxt, l, rl);
            if (std::abs(k2) > 1e-9 * (std::abs(gamma) + std::abs(k1)))
                nl.add_resistor("R" + tag, cur, nxt, 1.0 / (c * k2));
        }
        cur = nxt;
    }
}

} // namespace pgsi
