#include "extract/equivalent_circuit.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "extract/reduction.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

MatrixC EquivalentCircuit::admittance(double freq_hz) const {
    PGSI_REQUIRE(freq_hz > 0, "EquivalentCircuit: frequency must be positive");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);
    const std::size_t n = node_count();
    MatrixC y(n, n);
    for (const RlcBranch& b : branches) {
        Complex yb(0.0, 0.0);
        if (b.c != 0) yb += jw * b.c;
        if (b.l != 0 || b.r != 0) yb += 1.0 / (Complex(b.r, 0.0) + jw * b.l);
        y(b.m, b.m) += yb;
        y(b.n, b.n) += yb;
        y(b.m, b.n) -= yb;
        y(b.n, b.m) -= yb;
    }
    for (std::size_t k = 0; k < n; ++k) y(k, k) += jw * node_cap[k];
    return y;
}

MatrixC EquivalentCircuit::impedance(double freq_hz,
                                     const std::vector<std::size_t>& ports) const {
    const MatrixC y = admittance(freq_hz);
    const MatrixC z = Lu<Complex>(y).inverse();
    return z.submatrix(ports, ports);
}

void EquivalentCircuit::stamp(Netlist& nl, const std::vector<NodeId>& node_map,
                              NodeId ref, const std::string& prefix) const {
    PGSI_REQUIRE(node_map.size() == node_count(),
                 "EquivalentCircuit::stamp: node_map size mismatch");
    for (const RlcBranch& b : branches) {
        const std::string tag =
            prefix + "_" + std::to_string(b.m) + "_" + std::to_string(b.n);
        const NodeId nm = node_map[b.m];
        const NodeId nn = node_map[b.n];
        if (b.c != 0) nl.add_capacitor("C" + tag, nm, nn, b.c);
        if (b.l != 0) {
            nl.add_inductor("L" + tag, nm, nn, b.l, b.r);
        } else if (b.r > 0) {
            nl.add_resistor("R" + tag, nm, nn, b.r);
        }
    }
    for (std::size_t k = 0; k < node_count(); ++k)
        if (node_cap[k] > 0)
            nl.add_capacitor("C" + prefix + "_g" + std::to_string(k), node_map[k],
                             ref, node_cap[k]);
}

double EquivalentCircuit::total_reference_capacitance() const {
    double s = 0;
    for (double c : node_cap) s += c;
    return s;
}

CircuitExtractor::CircuitExtractor(const PlaneBem& bem, ExtractionOptions options)
    : bem_(bem), options_(options) {}

EquivalentCircuit CircuitExtractor::extract(
    const std::vector<std::size_t>& keep_nodes) const {
    PGSI_REQUIRE(!keep_nodes.empty(), "CircuitExtractor: keep set is empty");
    const std::size_t n = keep_nodes.size();
    const bool full = (n == bem_.node_count());

    // Γ is reduced by the exact Kron (Laplacian Schur) complement. The
    // capacitance must NOT be reduced with a floating-charge Schur
    // complement: eliminated cells belong to the same conductor, so their
    // charge has to be re-attributed to the retained nodes. The consistent
    // quasi-static projection is the congruence transform C_red = Wᵀ C W
    // with the inductive interpolation W = [I; −Γ_ee⁻¹ Γ_ek] — the voltage
    // distribution the inductive network imposes on the eliminated nodes.
    // W maps constants to constants (Γ is a Laplacian), so the total plane
    // capacitance is preserved exactly. Note Γ_red = Wᵀ Γ W equals the Kron
    // complement, so one projection serves both matrices.
    MatrixD gamma, cmax;
    if (full) {
        gamma = bem_.gamma();
        cmax = bem_.maxwell_capacitance();
    } else {
        const MatrixD& g = bem_.gamma();
        const MatrixD& c = bem_.maxwell_capacitance();
        const std::vector<std::size_t> elim =
            complement_indices(g.rows(), keep_nodes);
        const MatrixD gke = g.submatrix(keep_nodes, elim);
        const MatrixD gek = g.submatrix(elim, keep_nodes);
        const MatrixD gee = g.submatrix(elim, elim);
        const MatrixD x = Lu<double>(gee).solve(gek); // Γ_ee⁻¹ Γ_ek

        gamma = g.submatrix(keep_nodes, keep_nodes);
        gamma -= gke * x;

        const MatrixD cke = c.submatrix(keep_nodes, elim);
        const MatrixD cee = c.submatrix(elim, elim);
        cmax = c.submatrix(keep_nodes, keep_nodes);
        cmax -= cke * x;
        cmax -= x.transposed() * c.submatrix(elim, keep_nodes);
        cmax += x.transposed() * cee * x;

        // Restore exact symmetry lost to pivoting.
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                double v = 0.5 * (gamma(i, j) + gamma(j, i));
                gamma(i, j) = v;
                gamma(j, i) = v;
                v = 0.5 * (cmax(i, j) + cmax(j, i));
                cmax(i, j) = v;
                cmax(j, i) = v;
            }
    }
    MatrixD gdc;
    const bool lossy = options_.include_resistance &&
                       [&] {
                           for (const auto& s : bem_.mesh().shapes())
                               if (s.sheet_resistance <= 0) return false;
                           return true;
                       }();
    if (lossy)
        gdc = full ? bem_.dc_conductance()
                   : schur_reduce(bem_.dc_conductance(), keep_nodes);

    // Pruning thresholds from the largest off-diagonal magnitudes.
    double gmax = 0, cmx = 0, dmax = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            gmax = std::max(gmax, std::abs(gamma(i, j)));
            cmx = std::max(cmx, std::abs(cmax(i, j)));
            if (lossy) dmax = std::max(dmax, std::abs(gdc(i, j)));
        }
    const double gtol = options_.prune_rel_tol * gmax;
    const double ctol = options_.prune_rel_tol * cmx;
    const double dtol = options_.prune_rel_tol * dmax;

    EquivalentCircuit ec;
    ec.has_reference = bem_.greens().has_reference();
    ec.node_position.reserve(n);
    ec.node_z.reserve(n);
    for (std::size_t k : keep_nodes) {
        ec.node_position.push_back(bem_.mesh().nodes()[k].center);
        ec.node_z.push_back(bem_.mesh().nodes()[k].z);
    }

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            RlcBranch b;
            b.m = i;
            b.n = j;
            if (std::abs(gamma(i, j)) > gtol && gamma(i, j) != 0.0)
                b.l = -1.0 / gamma(i, j);
            if (std::abs(cmax(i, j)) > ctol) b.c = -cmax(i, j);
            if (options_.enforce_passive) {
                if (b.l < 0) b.l = 0;
                if (b.c < 0) b.c = 0;
            }
            if (lossy && b.l != 0 && std::abs(gdc(i, j)) > dtol &&
                gdc(i, j) < 0.0)
                b.r = -1.0 / gdc(i, j);
            if (b.l != 0 || b.c != 0 || b.r != 0) ec.branches.push_back(b);
        }

    ec.node_cap.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0;
        for (std::size_t j = 0; j < n; ++j) s += cmax(j, i);
        // Row sums are the capacitance to the reference; without a reference
        // plane they vanish to rounding — clamp tiny negatives.
        ec.node_cap[i] = std::max(0.0, s);
    }
    return ec;
}

EquivalentCircuit CircuitExtractor::extract_full() const {
    std::vector<std::size_t> keep(bem_.node_count());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    return extract(keep);
}

std::vector<std::size_t> CircuitExtractor::select_nodes(
    const std::vector<std::size_t>& ports, std::size_t interior_target) const {
    std::vector<std::size_t> keep = ports;
    std::sort(keep.begin(), keep.end());
    keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
    if (interior_target > 0) {
        const std::vector<std::size_t> sorted_ports = keep;
        const std::size_t n = bem_.node_count();
        const std::size_t stride = std::max<std::size_t>(1, n / interior_target);
        for (std::size_t i = 0; i < n; i += stride)
            if (!std::binary_search(sorted_ports.begin(), sorted_ports.end(), i))
                keep.push_back(i);
        std::sort(keep.begin(), keep.end());
        keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
    }
    return keep;
}

} // namespace pgsi
