#include "extract/spice_export.hpp"

#include <ostream>
#include <sstream>

namespace pgsi {

void write_spice_subckt(std::ostream& os, const EquivalentCircuit& ec,
                        const std::string& subckt_name) {
    const std::size_t n = ec.node_count();
    os << "* pgsi extracted power/ground equivalent circuit\n";
    os << "* " << n << " nodes, " << ec.branches.size() << " branches\n";
    os << ".SUBCKT " << subckt_name;
    for (std::size_t k = 0; k < n; ++k) os << " n" << k;
    os << " ref\n";
    os.precision(9);
    std::size_t mid = 0;
    for (const RlcBranch& b : ec.branches) {
        const std::string suffix =
            std::to_string(b.m) + "_" + std::to_string(b.n);
        if (b.c > 0)
            os << "C" << suffix << " n" << b.m << " n" << b.n << " " << b.c << "\n";
        if (b.l != 0 && b.r > 0) {
            os << "R" << suffix << " n" << b.m << " mid" << mid << " " << b.r
               << "\n";
            os << "L" << suffix << " mid" << mid << " n" << b.n << " " << b.l
               << "\n";
            ++mid;
        } else if (b.l != 0) {
            os << "L" << suffix << " n" << b.m << " n" << b.n << " " << b.l << "\n";
        } else if (b.r > 0) {
            os << "R" << suffix << " n" << b.m << " n" << b.n << " " << b.r << "\n";
        }
    }
    for (std::size_t k = 0; k < n; ++k)
        if (ec.node_cap[k] > 0)
            os << "Cg" << k << " n" << k << " ref " << ec.node_cap[k] << "\n";
    os << ".ENDS " << subckt_name << "\n";
}

std::string spice_subckt_string(const EquivalentCircuit& ec,
                                const std::string& subckt_name) {
    std::ostringstream os;
    write_spice_subckt(os, ec, subckt_name);
    return os.str();
}

} // namespace pgsi
