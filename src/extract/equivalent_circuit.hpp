// Equivalent-circuit extraction from the quasi-static field solution (§4.2).
//
// From the admittance form Y(ω) = jωC + Pᵀ(Zs + jωL)⁻¹P the paper constructs
// a distributed circuit with a branch between every pair of retained nodes:
// an inductance L_mn in series with a resistance R_mn, in parallel with a
// capacitance C_mn (eq 20, Fig. 2), plus a capacitance from every node to the
// reference plane. The element values follow the paper's element-wise maps:
//
//     Γ = Pᵀ L⁻¹ P  (Kron-reduced to the circuit nodes)
//     L_mn = −1/Γ_mn                      (m ≠ n, eq 24)
//     C_mn = −C^Maxwell_mn                (m ≠ n, eq 25)
//     C_mm = Σ_n C^Maxwell_nm             (node-to-reference, eq 27)
//     L_mm = 0                            (eq 26 — no inductance to reference)
//     R_mn = −1/G_mn from the Kron-reduced DC conductance (first-order loss)
//
// The extracted network is frequency independent and valid "up to a certain
// frequency limit well above most digital signal bandwidth" (§4.1); the
// ablation benches quantify that limit against the direct BEM sweep.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "em/bem_plane.hpp"
#include "geometry/point2.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// One branch of the equivalent circuit between retained nodes m and n:
/// series R–L in parallel with C. A zero value means the element is absent.
struct RlcBranch {
    std::size_t m = 0, n = 0;
    double r = 0; ///< [ohm]
    double l = 0; ///< [H]; may be negative for weakly coupled distant pairs
    double c = 0; ///< [F]
};

/// Extracted N-node equivalent circuit with a common reference (Fig. 2).
struct EquivalentCircuit {
    std::vector<Point2> node_position; ///< board location of each node
    VectorD node_z;                    ///< conductor height of each node
    std::vector<RlcBranch> branches;   ///< node-pair branches
    VectorD node_cap;                  ///< node-to-reference capacitance [F]
    bool has_reference = true;

    std::size_t node_count() const { return node_cap.size(); }

    /// Nodal admittance matrix of the model at frequency f (reference node
    /// implicit).
    MatrixC admittance(double freq_hz) const;

    /// Impedance matrix seen at a subset of nodes, all other nodes open.
    MatrixC impedance(double freq_hz, const std::vector<std::size_t>& ports) const;

    /// Stamp the circuit into a netlist. node_map[k] is the netlist node for
    /// circuit node k; ref is the netlist node playing the reference plane.
    /// Element names are prefixed for uniqueness.
    void stamp(Netlist& nl, const std::vector<NodeId>& node_map, NodeId ref,
               const std::string& prefix) const;

    /// Total capacitance to reference (sum of node caps) — a quick sanity
    /// metric against parallel-plate estimates.
    double total_reference_capacitance() const;
};

/// Extraction controls.
struct ExtractionOptions {
    /// Drop L/C/R branch elements whose defining matrix entry is smaller than
    /// this fraction of the largest off-diagonal magnitude. 0 keeps all.
    double prune_rel_tol = 0.0;
    /// Extract branch resistances from the DC conductance network (requires
    /// lossy sheets). When false the circuit is purely LC.
    bool include_resistance = true;
    /// Drop negative branch inductances/capacitances. The element-wise map
    /// (eqs 24-25) yields small negative values for weakly coupled node
    /// pairs; a network of positive R/L/C is passive by construction and
    /// therefore unconditionally stable in transient analysis, while the
    /// negative branches create spurious unstable internal loop modes. The
    /// frequency-domain error from dropping them is small (they are weak by
    /// construction); set to false to study the exact element-wise map.
    bool enforce_passive = true;
};

/// Extracts equivalent circuits from an assembled PlaneBem.
class CircuitExtractor {
public:
    explicit CircuitExtractor(const PlaneBem& bem, ExtractionOptions options = {});

    /// Equivalent circuit over an explicit set of retained mesh nodes (the
    /// power/ground pins plus any interior nodes wanted for wave fidelity).
    EquivalentCircuit extract(const std::vector<std::size_t>& keep_nodes) const;

    /// Equivalent circuit over every mesh node (no reduction).
    EquivalentCircuit extract_full() const;

    /// Node-selection helper: the given port nodes plus roughly
    /// `interior_target` interior nodes sampled uniformly across the mesh.
    std::vector<std::size_t> select_nodes(const std::vector<std::size_t>& ports,
                                          std::size_t interior_target) const;

private:
    const PlaneBem& bem_;
    ExtractionOptions options_;
};

} // namespace pgsi
