#include "extract/peec_stamp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pgsi {

void stamp_peec(Netlist& nl, const PlaneBem& bem,
                const std::vector<NodeId>& node_map, NodeId ref,
                const std::string& prefix, const PeecOptions& options) {
    PGSI_REQUIRE(node_map.size() == bem.node_count(),
                 "stamp_peec: node_map size mismatch");

    const auto& branches = bem.mesh().branches();
    const MatrixD& l = bem.inductance_matrix();
    const VectorD& r = bem.branch_resistance();

    // Branch self inductances (+ DC resistance in series).
    std::vector<std::string> lnames(branches.size());
    for (std::size_t b = 0; b < branches.size(); ++b) {
        lnames[b] = "L" + prefix + "_" + std::to_string(b);
        nl.add_inductor(lnames[b], node_map[branches[b].n1],
                        node_map[branches[b].n2], l(b, b), r[b]);
    }
    // Mutual couplings.
    for (std::size_t a = 0; a < branches.size(); ++a) {
        for (std::size_t b = a + 1; b < branches.size(); ++b) {
            if (l(a, b) == 0.0) continue;
            const double k = l(a, b) / std::sqrt(l(a, a) * l(b, b));
            if (std::abs(k) < options.coupling_floor) continue;
            nl.add_mutual("K" + prefix + "_" + std::to_string(a) + "_" +
                              std::to_string(b),
                          lnames[a], lnames[b], k);
        }
    }

    // Maxwell capacitance network: branch caps −C_ij, node caps = row sums.
    const MatrixD& c = bem.maxwell_capacitance();
    const std::size_t n = bem.node_count();
    double cmax = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            cmax = std::max(cmax, std::abs(c(i, j)));
    const double cfloor = options.cap_rel_floor * cmax;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double cb = -c(i, j);
            if (std::abs(cb) <= cfloor) continue;
            nl.add_capacitor("C" + prefix + "_" + std::to_string(i) + "_" +
                                 std::to_string(j),
                             node_map[i], node_map[j], cb);
        }
        double row = 0;
        for (std::size_t j = 0; j < n; ++j) row += c(j, i);
        if (row > 0 && node_map[i] != ref)
            nl.add_capacitor("C" + prefix + "_g" + std::to_string(i),
                             node_map[i], ref, row);
    }
}

} // namespace pgsi
