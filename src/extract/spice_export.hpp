// SPICE netlist export of an extracted equivalent circuit, so the macromodel
// can be consumed by external circuit simulators (§5.1: "general purpose
// circuit simulators such as SPICE can also be used for the simulation").
#pragma once

#include <iosfwd>
#include <string>

#include "extract/equivalent_circuit.hpp"

namespace pgsi {

/// Write the circuit as a .SUBCKT. Terminal order: node 0..N-1, then the
/// reference node last. Element values are emitted in SI units with full
/// precision.
void write_spice_subckt(std::ostream& os, const EquivalentCircuit& ec,
                        const std::string& subckt_name);

/// Convenience: render to a string.
std::string spice_subckt_string(const EquivalentCircuit& ec,
                                const std::string& subckt_name);

} // namespace pgsi
