// Umbrella header: the full public API of the pgsi library.
//
// Fine-grained headers remain available (and are preferred in large builds);
// this is the convenience include for examples, notebooks and quick tools:
//
//     #include "pgsi.hpp"
//     using namespace pgsi;
#pragma once

// Substrate
#include "common/constants.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/eigen.hpp"
#include "numeric/fft.hpp"
#include "numeric/gmres.hpp"
#include "numeric/interp.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/quadrature.hpp"

// Geometry and electromagnetic modeling (paper §3)
#include "em/bem_plane.hpp"
#include "em/cavity_model.hpp"
#include "em/greens.hpp"
#include "em/interaction_lattice.hpp"
#include "em/iterative_solver.hpp"
#include "em/rectint.hpp"
#include "em/solver.hpp"
#include "em/toeplitz_operator.hpp"
#include "em/surface_impedance.hpp"
#include "em/via.hpp"
#include "geometry/point2.hpp"
#include "geometry/polygon.hpp"
#include "geometry/rectmesh.hpp"

// Equivalent-circuit extraction and macromodeling (paper §4)
#include "extract/equivalent_circuit.hpp"
#include "extract/peec_stamp.hpp"
#include "extract/reduction.hpp"
#include "extract/spice_export.hpp"
#include "extract/vector_fit.hpp"

// Circuit simulation (paper §5)
#include "circuit/ac.hpp"
#include "circuit/driver.hpp"
#include "circuit/lossy_line.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/parser.hpp"
#include "circuit/sources.hpp"
#include "circuit/sparams.hpp"
#include "circuit/tline.hpp"
#include "circuit/transient.hpp"

// Transmission-line extraction and the FDTD reference engine
#include "fdtd/plane_fdtd.hpp"
#include "tline2d/mtl_extract.hpp"

// System-level signal integrity (paper §5.2, §6.2)
#include "si/board.hpp"
#include "si/board_file.hpp"
#include "si/cosim.hpp"
#include "si/decap_opt.hpp"
#include "si/package.hpp"
#include "si/ssn.hpp"

// Interchange formats
#include "io/csv.hpp"
#include "io/touchstone.hpp"
